"""A small blocking client for the Glue-Nail query server.

::

    from repro.server.client import Client

    with Client(port=server.port) as client:
        client.facts("edge", [(1, 2), (2, 3)])
        client.load("path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y) & edge(Y, Z).")
        result = client.query("path(1, X)?")
        result.values        # [(1, 2), (1, 3)]
        result.stats         # per-session QueryStats payload (dict)

One request / one response per call, JSON lines over a TCP socket; errors
come back as :class:`RemoteError` carrying the server's message.

Subscriptions make the stream bidirectional: after ``client.subscribe``,
the server pushes notification frames (``"event": "notification"``)
interleaved with responses.  The client demultiplexes -- frames arriving
while a request waits for its response are buffered into the matching
subscription -- and :meth:`ClientSubscription.next` (or iteration) reads
further frames off the socket directly.
"""

from __future__ import annotations

import socket
from typing import Callable, Dict, List, Optional, Sequence

from repro.server.protocol import MAX_LINE, decode, encode

DEFAULT_PORT = 7411


class RemoteError(Exception):
    """The server answered ``ok: false``."""

    def __init__(self, message: str, kind: str = "error"):
        super().__init__(message)
        self.kind = kind


class ConnectionClosed(ConnectionError):
    """The server closed the connection (EOF on the socket)."""


class RemoteResult(list):
    """Rows from the server: a list of pretty-printed tuples, plus
    ``values`` (JSON-lowered rows as tuples), ``stats`` and ``resolution``
    mirroring :class:`~repro.core.result.QueryResult`."""

    def __init__(self, payload: dict):
        super().__init__(payload.get("rows", []))
        self.values: List[tuple] = [
            tuple(_listed_to_tuple(v) for v in row)
            for row in payload.get("values", [])
        ]
        self.stats: Optional[dict] = payload.get("stats")
        self.resolution: Optional[str] = payload.get("resolution")
        self.trace: List[dict] = payload.get("trace", [])


def _listed_to_tuple(value):
    """JSON arrays (compound terms) back to nested tuples."""
    if isinstance(value, list):
        return tuple(_listed_to_tuple(v) for v in value)
    return value


class ClientNotification:
    """One pushed delta: ``sub``, ``seq``, ``predicate``, ``op``
    (``insert`` / ``delete`` / ``resync``), ``rows`` (tuples), ``txn``,
    ``version`` (the published database version this delta brought the
    predicate to -- the version an MVCC snapshot reader pins to see it),
    and ``dropped`` (how many notifications a slow consumer lost before a
    ``resync``)."""

    __slots__ = ("sub", "seq", "predicate", "op", "rows", "txn", "version",
                 "dropped")

    def __init__(self, frame: dict):
        self.sub: int = frame.get("sub", 0)
        self.seq: int = frame.get("seq", 0)
        self.predicate: str = frame.get("predicate", "")
        self.op: str = frame.get("op", "")
        self.rows: List[tuple] = [
            tuple(_listed_to_tuple(v) for v in row)
            for row in frame.get("rows", [])
        ]
        self.txn: int = frame.get("txn", 0)
        self.version: int = frame.get("version", 0)
        self.dropped: int = frame.get("dropped", 0)

    def __repr__(self) -> str:
        return (
            f"ClientNotification({self.predicate} {self.op} "
            f"seq={self.seq} rows={len(self.rows)})"
        )


class ClientSubscription:
    """One live subscription: iterate it (blocking) or poll with
    :meth:`next`; notifications that arrived interleaved with other
    requests are buffered and drained first."""

    def __init__(self, client: "Client", sub_id: int, predicate: str, kind: str,
                 snapshot: Optional[List[tuple]] = None):
        self.client = client
        self.id = sub_id
        self.predicate = predicate
        self.kind = kind  # "edb" | "idb"
        #: Rows at subscribe time when requested with ``snapshot=True``.
        self.snapshot = snapshot
        self.active = True
        self._buffer: List[ClientNotification] = []

    def next(self, timeout: Optional[float] = None) -> Optional[ClientNotification]:
        """The next notification, waiting up to ``timeout`` seconds
        (``None`` blocks on the client's default timeout); returns None if
        nothing arrived in time."""
        if self._buffer:
            return self._buffer.pop(0)
        if not self.active:
            return None
        return self.client._wait_notification(self, timeout)

    def __iter__(self):
        while self.active or self._buffer:
            note = self.next()
            if note is None:
                return
            yield note

    def close(self) -> None:
        """Unsubscribe on the server and stop iterating."""
        if self.active:
            self.client.unsubscribe(self)


class Client:
    """A blocking JSON-lines connection to one server session."""

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 timeout: Optional[float] = 30.0):
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # Reading goes through our own buffer (not socket.makefile): a
        # timed-out read must keep the partial line for the next call, and
        # per-call timeouts need sock.settimeout between recv()s.
        self._recv_buf = bytearray()
        self._writer = self._sock.makefile("w", encoding="utf-8", newline="\n")
        self._next_id = 0
        self._subs: Dict[int, ClientSubscription] = {}
        self._closed = False

    # -------------------------------------------------------------- #
    # the wire
    # -------------------------------------------------------------- #

    def _read_line(self, timeout: Optional[float]) -> Optional[str]:
        """One frame line, or None on timeout.  Raises ConnectionClosed
        on EOF; a timeout leaves any partial line buffered."""
        deadline_timeout = self.timeout if timeout is None else timeout
        while True:
            newline = self._recv_buf.find(b"\n")
            if newline >= 0:
                line = self._recv_buf[: newline + 1]
                del self._recv_buf[: newline + 1]
                return line.decode("utf-8", errors="replace").strip()
            if len(self._recv_buf) > MAX_LINE:
                raise ConnectionError(
                    f"server frame exceeds {MAX_LINE} bytes"
                )
            self._sock.settimeout(deadline_timeout)
            try:
                chunk = self._sock.recv(65536)
            except (socket.timeout, TimeoutError):
                return None
            if not chunk:
                raise ConnectionClosed("server closed the connection")
            self._recv_buf.extend(chunk)

    def _read_frame(self, timeout: Optional[float]) -> Optional[dict]:
        line = self._read_line(timeout)
        if line is None or not line:
            return None
        return decode(line)

    def _dispatch_notification(self, frame: dict) -> Optional[ClientNotification]:
        note = ClientNotification(frame)
        sub = self._subs.get(note.sub)
        if sub is not None:
            sub._buffer.append(note)
        return note

    def request(self, op: str, timeout: Optional[float] = None, **fields) -> dict:
        """Send one op and return the server's ``ok`` payload.

        Notification frames arriving ahead of the response are routed to
        their subscriptions, never lost.  ``timeout`` overrides the
        client default for this call; expiry raises :class:`TimeoutError`.
        """
        self._next_id += 1
        payload = {"op": op, "id": self._next_id}
        payload.update(fields)
        self._writer.write(encode(payload) + "\n")
        self._writer.flush()
        while True:
            frame = self._read_frame(timeout)
            if frame is None:
                raise TimeoutError(
                    f"no response to {op!r} within "
                    f"{self.timeout if timeout is None else timeout}s"
                )
            if frame.get("event") == "notification":
                self._dispatch_notification(frame)
                continue
            if not frame.get("ok"):
                raise RemoteError(frame.get("error", "unknown server error"),
                                  kind=frame.get("kind", "error"))
            return frame

    def _wait_notification(self, sub: ClientSubscription,
                           timeout: Optional[float]) -> Optional[ClientNotification]:
        """Read frames until one lands in ``sub`` (or the timeout expires)."""
        while True:
            frame = self._read_frame(timeout)
            if frame is None:
                return None
            if frame.get("event") == "notification":
                self._dispatch_notification(frame)
                if sub._buffer:
                    return sub._buffer.pop(0)
                continue
            # A response with no request in flight: tolerate and drop.

    # -------------------------------------------------------------- #
    # queries
    # -------------------------------------------------------------- #

    def ping(self) -> str:
        return self.request("ping")["session"]

    def query(self, text: str, magic: bool = False) -> RemoteResult:
        return RemoteResult(self.request("query", q=text, magic=magic))

    def rows(self, name: str, arity: int) -> RemoteResult:
        return RemoteResult(self.request("rows", name=name, arity=arity))

    def call(self, name: str, inputs: Sequence[Sequence] = ((),),
             module: Optional[str] = None, arity: Optional[int] = None) -> RemoteResult:
        return RemoteResult(self.request(
            "call", name=name, inputs=[list(row) for row in inputs],
            module=module, arity=arity,
        ))

    def rels(self) -> List[dict]:
        return self.request("rels")["relations"]

    def stats(self) -> dict:
        return self.request("stats")

    def trace(self, on: bool = True) -> bool:
        return self.request("trace", on=on)["tracing"]

    # -------------------------------------------------------------- #
    # updates and transactions
    # -------------------------------------------------------------- #

    def facts(self, name: str, rows: Sequence[Sequence]) -> int:
        return self.request("facts", name=name,
                            rows=[list(row) for row in rows])["inserted"]

    def fact(self, name: str, *values) -> int:
        return self.facts(name, [values])

    def load(self, source: str) -> None:
        self.request("load", source=source)

    def begin(self) -> None:
        self.request("begin")

    def commit(self) -> None:
        self.request("commit")

    def rollback(self) -> None:
        self.request("rollback")

    def checkpoint(self) -> int:
        return self.request("checkpoint")["checkpointed"]

    def repl(self, line: str) -> str:
        """Feed one raw REPL line; returns the REPL's printed output."""
        return self.request("repl", line=line)["out"]

    # -------------------------------------------------------------- #
    # subscriptions
    # -------------------------------------------------------------- #

    def subscribe(self, name: str, arity: int,
                  pattern: Optional[Sequence] = None,
                  source: Optional[str] = None,
                  capacity: int = 1024,
                  snapshot: bool = False,
                  callback: Optional[Callable] = None) -> ClientSubscription:
        """Register for committed deltas of ``name/arity``.

        ``pattern`` filters rows position by position (``None`` positions
        are wildcards).  ``source`` loads Glue-Nail rules into the
        server's shared subscription program (needed before subscribing
        to an IDB predicate the server does not yet define).
        ``snapshot=True`` captures the current extension atomically with
        registration into ``subscription.snapshot``.  A ``callback`` is
        invoked (on the reading thread) for each notification in addition
        to buffering; reading still happens via :meth:`ClientSubscription.next`
        or iteration.
        """
        fields = {"name": name, "arity": arity, "capacity": capacity}
        if pattern is not None:
            fields["pattern"] = list(pattern)
        if source is not None:
            fields["source"] = source
        if snapshot:
            fields["snapshot"] = True
        response = self.request("subscribe", **fields)
        rows = None
        if snapshot:
            rows = [
                tuple(_listed_to_tuple(v) for v in row)
                for row in response.get("snapshot", [])
            ]
        sub = ClientSubscription(
            self, response["sub"], response["predicate"], response["kind"],
            snapshot=rows,
        )
        if callback is not None:
            original_next = sub.next

            def next_with_callback(timeout: Optional[float] = None):
                note = original_next(timeout)
                if note is not None:
                    callback(note)
                return note

            sub.next = next_with_callback  # type: ignore[method-assign]
        self._subs[sub.id] = sub
        return sub

    def unsubscribe(self, sub_or_id) -> None:
        sub_id = sub_or_id.id if isinstance(sub_or_id, ClientSubscription) else sub_or_id
        sub = self._subs.pop(sub_id, None)
        if sub is not None:
            sub.active = False
        self.request("unsubscribe", sub=sub_id)

    # -------------------------------------------------------------- #

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for sub in self._subs.values():
            sub.active = False
        self._subs.clear()
        try:
            try:
                self.request("close", timeout=5.0)
            except (RemoteError, ConnectionError, TimeoutError, OSError):
                pass
        finally:
            self._writer.close()
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
