"""A small blocking client for the Glue-Nail query server.

::

    from repro.server.client import Client

    with Client(port=server.port) as client:
        client.facts("edge", [(1, 2), (2, 3)])
        client.load("path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y) & edge(Y, Z).")
        result = client.query("path(1, X)?")
        result.values        # [(1, 2), (1, 3)]
        result.stats         # per-session QueryStats payload (dict)

One request / one response per call, JSON lines over a TCP socket; errors
come back as :class:`RemoteError` carrying the server's message.
"""

from __future__ import annotations

import socket
from typing import List, Optional, Sequence

from repro.server.protocol import decode, encode

DEFAULT_PORT = 7411


class RemoteError(Exception):
    """The server answered ``ok: false``."""

    def __init__(self, message: str, kind: str = "error"):
        super().__init__(message)
        self.kind = kind


class RemoteResult(list):
    """Rows from the server: a list of pretty-printed tuples, plus
    ``values`` (JSON-lowered rows as tuples), ``stats`` and ``resolution``
    mirroring :class:`~repro.core.result.QueryResult`."""

    def __init__(self, payload: dict):
        super().__init__(payload.get("rows", []))
        self.values: List[tuple] = [
            tuple(_listed_to_tuple(v) for v in row)
            for row in payload.get("values", [])
        ]
        self.stats: Optional[dict] = payload.get("stats")
        self.resolution: Optional[str] = payload.get("resolution")
        self.trace: List[dict] = payload.get("trace", [])


def _listed_to_tuple(value):
    """JSON arrays (compound terms) back to nested tuples."""
    if isinstance(value, list):
        return tuple(_listed_to_tuple(v) for v in value)
    return value


class Client:
    """A blocking JSON-lines connection to one server session."""

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 timeout: Optional[float] = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8", newline="\n")
        self._writer = self._sock.makefile("w", encoding="utf-8", newline="\n")
        self._next_id = 0

    # -------------------------------------------------------------- #

    def request(self, op: str, **fields) -> dict:
        """Send one op and return the server's ``ok`` payload."""
        self._next_id += 1
        payload = {"op": op, "id": self._next_id}
        payload.update(fields)
        self._writer.write(encode(payload) + "\n")
        self._writer.flush()
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode(line.strip())
        if not response.get("ok"):
            raise RemoteError(response.get("error", "unknown server error"),
                              kind=response.get("kind", "error"))
        return response

    # -------------------------------------------------------------- #
    # queries
    # -------------------------------------------------------------- #

    def ping(self) -> str:
        return self.request("ping")["session"]

    def query(self, text: str, magic: bool = False) -> RemoteResult:
        return RemoteResult(self.request("query", q=text, magic=magic))

    def rows(self, name: str, arity: int) -> RemoteResult:
        return RemoteResult(self.request("rows", name=name, arity=arity))

    def call(self, name: str, inputs: Sequence[Sequence] = ((),),
             module: Optional[str] = None, arity: Optional[int] = None) -> RemoteResult:
        return RemoteResult(self.request(
            "call", name=name, inputs=[list(row) for row in inputs],
            module=module, arity=arity,
        ))

    def rels(self) -> List[dict]:
        return self.request("rels")["relations"]

    def stats(self) -> dict:
        return self.request("stats")

    def trace(self, on: bool = True) -> bool:
        return self.request("trace", on=on)["tracing"]

    # -------------------------------------------------------------- #
    # updates and transactions
    # -------------------------------------------------------------- #

    def facts(self, name: str, rows: Sequence[Sequence]) -> int:
        return self.request("facts", name=name,
                            rows=[list(row) for row in rows])["inserted"]

    def fact(self, name: str, *values) -> int:
        return self.facts(name, [values])

    def load(self, source: str) -> None:
        self.request("load", source=source)

    def begin(self) -> None:
        self.request("begin")

    def commit(self) -> None:
        self.request("commit")

    def rollback(self) -> None:
        self.request("rollback")

    def checkpoint(self) -> int:
        return self.request("checkpoint")["checkpointed"]

    def repl(self, line: str) -> str:
        """Feed one raw REPL line; returns the REPL's printed output."""
        return self.request("repl", line=line)["out"]

    # -------------------------------------------------------------- #

    def close(self) -> None:
        try:
            try:
                self.request("close")
            except (RemoteError, ConnectionError, OSError):
                pass
        finally:
            self._reader.close()
            self._writer.close()
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
