"""LDL/CORAL-style extensional sets (paper Sections 5.1 and 8.1).

In LDL "a set-valued attribute has the elements of a set as its value";
equality between two set values needs *set unification*, rules with the
set-grouping operator abandon the tuple-based reading, and set-of-set
results must be explicitly flattened.  This module implements that model
over Glue-Nail terms so experiment E7 can compare it with HiLog name-sets.

A set value is represented canonically as ``$set(e1, ..., en)`` with the
elements sorted and deduplicated, which is how an implementation would
normalize ground sets.  ``set_unify`` matches a possibly-variable set
pattern against a ground set -- the expensive operation the paper calls
out ("The only type of set equality available is set unification, which
can be expensive").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.terms.matching import Bindings, match
from repro.terms.term import Atom, Compound, Term, Var, is_ground, mk, sort_key

SET_FUNCTOR = Atom("$set")


from repro.errors import GlueNailError


class ExtensionalSetError(GlueNailError):
    pass


def make_set(elements: Iterable[object]) -> Term:
    """Build a canonical ground set value from elements."""
    terms = [mk(e) for e in elements]
    for term in terms:
        if not is_ground(term):
            raise ExtensionalSetError("set elements must be ground")
    unique = sorted(set(terms), key=sort_key)
    if not unique:
        return SET_FUNCTOR  # the empty set is the bare functor atom
    return Compound(SET_FUNCTOR, tuple(unique))


def is_set_value(term: Term) -> bool:
    if term == SET_FUNCTOR:
        return True
    return isinstance(term, Compound) and term.functor == SET_FUNCTOR


def set_elements(term: Term) -> Tuple[Term, ...]:
    if term == SET_FUNCTOR:
        return ()
    if not is_set_value(term):
        raise ExtensionalSetError(f"not a set value: {term}")
    return term.args


def set_member(element: object, set_value: Term) -> bool:
    return mk(element) in set_elements(set_value)


def set_union(left: Term, right: Term) -> Term:
    return make_set(set_elements(left) + set_elements(right))


def sets_equal_extensional(left: Term, right: Term) -> bool:
    """Member-level equality: O(n log n) canonicalization + comparison.

    Contrast with HiLog name-sets, where equality is a name comparison.
    """
    return set_elements(left) == set_elements(right)


def set_unify(pattern: Term, ground: Term, bindings: Optional[Bindings] = None) -> Optional[Bindings]:
    """Unify a set pattern (elements may contain variables) with a ground set.

    Set unification must try element correspondences modulo ordering; this
    implementation does the standard backtracking search over injective
    assignments.  Worst case is factorial -- the expense the paper notes.
    """
    if isinstance(pattern, Var):
        result = dict(bindings) if bindings else {}
        bound = result.get(pattern.name)
        if bound is not None:
            return result if sets_equal_extensional(bound, ground) else None
        result[pattern.name] = ground
        return result
    pattern_elems = set_elements(pattern)
    ground_elems = set_elements(ground)
    if len(pattern_elems) != len(ground_elems):
        # Canonical ground sets have no duplicates; a pattern with repeated
        # variables could still shrink, which we do not model (LDL's ground
        # set values are already deduplicated).
        return None
    base = dict(bindings) if bindings else {}
    return _match_elements(list(pattern_elems), list(ground_elems), base)


def _match_elements(
    pattern_elems: List[Term], ground_elems: List[Term], bindings: Bindings
) -> Optional[Bindings]:
    if not pattern_elems:
        return bindings
    first, rest = pattern_elems[0], pattern_elems[1:]
    for i, candidate in enumerate(ground_elems):
        attempt = match(first, candidate, bindings)
        if attempt is None:
            continue
        remaining = ground_elems[:i] + ground_elems[i + 1 :]
        result = _match_elements(rest, remaining, attempt)
        if result is not None:
            return result
    return None


def flatten_set_of_sets(set_of_sets: Term) -> Term:
    """The explicit flattening LDL/CORAL programs must perform when a rule
    produces a set of sets but the union was wanted."""
    out: List[Term] = []
    for inner in set_elements(set_of_sets):
        out.extend(set_elements(inner))
    return make_set(out)


def ldl_group(
    rows: Sequence[Tuple[Term, ...]],
    key_positions: Sequence[int],
    value_position: int,
) -> List[Tuple[Term, ...]]:
    """The LDL set-grouping operator ``p(K, <V>)``: partition rows by the
    key columns and collect the value column into a set value per group.

    Returns rows ``key_values + (set_value,)`` sorted by key for
    determinism.  This is the operation whose reading "can only be
    understood if the usual tuple-based reading of a rule is abandoned"
    (paper Section 8.1).
    """
    groups: Dict[Tuple[Term, ...], List[Term]] = {}
    for row in rows:
        key = tuple(row[p] for p in key_positions)
        groups.setdefault(key, []).append(row[value_position])
    out = [key + (make_set(values),) for key, values in groups.items()]
    out.sort(key=lambda r: tuple(sort_key(v) for v in r))
    return out
