"""Run-time predicate dispatch: the baseline of experiment E8.

Paper Section 9: "A naive system would wait until X becomes bound at run
time, and then check it against the four possible cases.  The current
compiler will have already eliminated those choices which were seen to be
impossible at compile time."

This module constructs a :class:`~repro.core.system.GlueNailSystem` whose
compiler keeps the naive behaviour: every predicate-variable subgoal
compiles to a :class:`~repro.vm.plan.DynamicStep` that performs the full
class check per row at run time (and is a pipeline barrier besides).
"""

from __future__ import annotations

from typing import Optional

from repro.core.system import GlueNailSystem
from repro.storage.database import Database


def make_runtime_dispatch_system(
    db: Optional[Database] = None, **kwargs
) -> GlueNailSystem:
    """A system with compile-time predicate dereferencing disabled."""
    kwargs.setdefault("deref_at_compile_time", False)
    return GlueNailSystem(db=db, **kwargs)
