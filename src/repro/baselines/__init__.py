"""Baselines the paper compares against (Section 8) and design alternatives
it argues against (Sections 9-10), implemented so the comparisons are
runnable:

* :mod:`repro.baselines.extensional_sets` -- LDL/CORAL-style sets whose
  value *is* the member collection, with set-unification equality and
  explicit flattening; contrasted with HiLog name-sets in experiment E7.
* :mod:`repro.baselines.runtime_dispatch` -- predicate-variable subgoals
  resolved by a run-time four-way class check instead of compile-time
  dereferencing; experiment E8.
* the ``naive`` strategy of :class:`repro.nail.engine.NailEngine` -- full
  re-derivation instead of seminaive/uniondiff; experiment E6.
* :class:`repro.storage.adaptive.NeverIndexPolicy` /
  :class:`~repro.storage.adaptive.AlwaysIndexPolicy` -- the degenerate
  indexing policies around the adaptive one; experiment E5.
"""

from repro.baselines.extensional_sets import (
    ExtensionalSetError,
    flatten_set_of_sets,
    ldl_group,
    make_set,
    set_member,
    set_union,
    set_unify,
    sets_equal_extensional,
)
from repro.baselines.runtime_dispatch import make_runtime_dispatch_system

__all__ = [
    "ExtensionalSetError",
    "flatten_set_of_sets",
    "ldl_group",
    "make_set",
    "make_runtime_dispatch_system",
    "set_member",
    "set_union",
    "set_unify",
    "sets_equal_extensional",
]
