"""The NAIL! declarative engine.

NAIL! predicates are IDB: "the appropriate parts of which are computed on
demand using the current value of the EDB" (paper Section 2).  The engine
stratifies the rule set, evaluates each stratum bottom-up with seminaive
iteration built on the back end's ``uniondiff`` operator (Section 10), and
supports demand-driven (magic-sets) evaluation for bound queries.  The
NAIL!-to-Glue compiler (:mod:`repro.nail.nail2glue`) emits equivalent Glue
code, which is the paper's headline integration ("NAIL! code is compiled
into Glue code").
"""

from repro.nail.rules import RuleInfo, check_rule_safety, prepare_rules
from repro.nail.engine import NailEngine
from repro.nail.naive import naive_eval
from repro.nail.seminaive import seminaive_eval
from repro.nail.magic import MagicTransformError, magic_transform
from repro.nail.nail2glue import Nail2GlueError, compile_rules_to_glue

__all__ = [
    "MagicTransformError",
    "Nail2GlueError",
    "NailEngine",
    "RuleInfo",
    "check_rule_safety",
    "compile_rules_to_glue",
    "magic_transform",
    "naive_eval",
    "prepare_rules",
    "seminaive_eval",
]
