"""The NAIL! engine: on-demand, stratified, incrementally maintained IDB.

A NAIL! predicate referenced from Glue (or queried directly) is computed
"on demand using the current value of the EDB" (paper Section 2).  The
engine caches derived relations per stratum and keeps them consistent with
*per-relation* version vectors instead of one global EDB counter:

* each stratum knows its transitive EDB support set (which relations its
  extension actually depends on, via :func:`~repro.nail.rules.compute_stratum_supports`),
  so a write to an unrelated relation leaves every cached stratum -- and
  every demand-cache entry -- untouched;
* pure *inserts* into a supporting relation are read back from the
  relation's change journal and propagated as a seminaive delta seeded
  from just the new tuples (:func:`~repro.nail.seminaive.incremental_eval`),
  repairing the cached fixpoint in place;
* deletions, overflowed journals, and growth under negation or aggregation
  conservatively invalidate -- but only the affected strata and the strata
  depending on them, which are recomputed from scratch on next demand.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.depgraph import build_dependency_graph
from repro.analysis.scope import Skeleton, pred_skeleton
from repro.analysis.stratify import Stratum, stratify
from repro.errors import GlueRuntimeError
from repro.lang.ast import PredSubgoal, RuleDecl
from repro.nail.bodyeval import RowsFn
from repro.nail.naive import naive_eval
from repro.nail.rules import RuleInfo, compute_stratum_supports, prepare_rules
from repro.nail.seminaive import DeltaRelation, incremental_eval, seminaive_eval
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.storage.uniondiff import uniondiff
from repro.terms.term import Term, Var, is_ground

Row = Tuple[Term, ...]


def _is_flat_query(args: Sequence[Term]) -> bool:
    """Flat pattern: every position is ground or a plain variable and the
    named variables are distinct -- the precondition of
    :meth:`~repro.storage.relation.Relation.match_rows`."""
    named = []
    for arg in args:
        if isinstance(arg, Var):
            if not arg.is_anonymous:
                named.append(arg.name)
        elif not is_ground(arg):
            return False
    return len(named) == len(set(named))


class NailEngine:
    """Evaluates a NAIL! rule set against an EDB.

    ``strategy`` selects the fixpoint algorithm: ``"seminaive"`` (the
    paper's uniondiff-based design) or ``"naive"`` (the baseline).
    ``join_mode`` selects how rule bodies are joined: ``"hash"`` (planned
    hash joins over indexed sources) or ``"nested"`` (the nested-loop
    baseline, kept for differential testing and cost comparisons).
    ``order_mode`` selects how rule bodies are ordered: ``"cost"`` (the
    :mod:`repro.opt` pass pipeline) or ``"program"`` (source order, the
    differential baseline).  ``batch_mode`` selects the body executor:
    ``"columnar"`` (plan-specialized batch kernels over interned id
    arrays, :mod:`repro.col`) or ``"row"`` (the binding-dict engine, the
    differential baseline); both charge identical cost counters.
    """

    def __init__(
        self,
        db: Database,
        rules: Sequence[RuleDecl],
        strategy: str = "seminaive",
        check_safety: bool = True,
        extra_edb: Optional[Database] = None,
        join_mode: str = "hash",
        order_mode: str = "cost",
        parallel=None,
        batch_mode: str = "columnar",
    ):
        if strategy not in ("seminaive", "naive"):
            raise ValueError(f"unknown NAIL! strategy {strategy!r}")
        if join_mode not in ("hash", "nested"):
            raise ValueError(f"unknown NAIL! join mode {join_mode!r}")
        if order_mode not in ("cost", "program"):
            raise ValueError(f"unknown NAIL! order mode {order_mode!r}")
        if batch_mode not in ("columnar", "row"):
            raise ValueError(f"unknown NAIL! batch mode {batch_mode!r}")
        self.db = db
        self.extra_edb = extra_edb
        self.strategy = strategy
        self.join_mode = join_mode
        self.order_mode = order_mode
        # A repro.par.ParallelContext (or None): partition-parallel join
        # execution, threaded through exactly like the mode flags above.
        self.parallel = parallel
        self.batch_mode = batch_mode
        self.rule_infos: List[RuleInfo] = prepare_rules(rules, check_safety=check_safety)
        self.dep = build_dependency_graph([info.rule for info in self.rule_infos])
        self.strata: List[Stratum] = stratify(self.dep)
        self._stratum_of: Dict[Skeleton, int] = {}
        for stratum in self.strata:
            for skeleton in stratum.skeletons:
                self._stratum_of[skeleton] = stratum.index
        self.tracer = db.tracer
        self.idb = Database(counters=db.counters, tracer=db.tracer, columnar=db.columnar)
        self._stratum_safe: Dict[int, Optional[str]] = {}  # index -> error or None
        self.rounds_run = 0  # fixpoint rounds in the last full evaluation
        # --- incremental maintenance state ----------------------------- #
        self.supports = compute_stratum_supports(self.rule_infos, self.strata)
        self._relevant_skels: Set[Skeleton] = set()
        for support in self.supports:
            self._relevant_skels |= support.transitive
        self._any_universal = any(s.universal for s in self.supports)
        # Which strata hold a valid cached extension right now.  The set is
        # not necessarily a prefix: invalidation clears exactly the strata
        # whose support changed plus their dependents.
        self._stratum_computed: List[bool] = [False] * len(self.strata)
        # Monotonic per-stratum change counter; demand-cache entries are
        # valid while the epoch of their predicate's stratum is unchanged.
        self._stratum_epoch: List[int] = [0] * len(self.strata)
        # (source tag, pred key) -> Relation.fingerprint at last scan; None
        # until the first scan establishes the baseline.
        self._edb_seen: Optional[Dict[tuple, Tuple[int, int]]] = None
        # Cheap no-change fast path: the global version pair only moves
        # when *some* relation changed, so equal pairs skip the full scan.
        self._global_seen: Optional[Tuple[int, int]] = None
        # (name, arity, signature) -> (answer Relation, stratum epoch)
        self._demand_cache: Dict[tuple, Tuple[Relation, int]] = {}
        # Delta listeners (see repro.sub): told about exact per-predicate
        # repair deltas (``on_idb_delta(key, rows)``) and about strata that
        # were invalidated instead of repaired (``on_idb_rebuild(skels)``)
        # so they can fall back to snapshot diffing or emit a resync.
        self.delta_listeners: List[object] = []

    def add_delta_listener(self, listener) -> None:
        """Register for exact repair deltas and rebuild (precision-loss)
        events; see :mod:`repro.sub`."""
        if listener not in self.delta_listeners:
            self.delta_listeners.append(listener)

    def remove_delta_listener(self, listener) -> None:
        if listener in self.delta_listeners:
            self.delta_listeners.remove(listener)

    # ------------------------------------------------------------------ #
    # public interface
    # ------------------------------------------------------------------ #

    def defines(self, skeleton: Skeleton) -> bool:
        """Does any rule define this predicate skeleton?"""
        return skeleton in self.dep.rules_by_head

    def materialize(self, name: Term, arity: int) -> Relation:
        """The full extension of a NAIL! predicate under the current EDB."""
        skeleton = pred_skeleton(name, arity)
        stratum_index = self._stratum_of.get(skeleton)
        if stratum_index is None:
            raise GlueRuntimeError(f"{name}/{arity} is not a NAIL! predicate")
        self._refresh()
        if all(self._stratum_computed[: stratum_index + 1]):
            # Repeated references inside one EDB state cost nothing, and
            # the trace and stats should say so rather than show a gap.
            self.db.counters.idb_cache_hits += 1
            if self.tracer.enabled:
                relation = self.idb.get(name, arity)
                self.tracer.event(
                    "idb_cache_hit",
                    f"{name}/{arity}",
                    stratum=stratum_index,
                    epoch=self._stratum_epoch[stratum_index],
                    version=0 if relation is None else relation.version,
                )
        self._compute_through(stratum_index)
        return self.idb.relation(name, arity)

    def materialize_all(self) -> Database:
        """Evaluate every stratum; returns the IDB database."""
        self._refresh()
        self._compute_through(len(self.strata) - 1)
        return self.idb

    def query(self, pred: Term, args: Sequence[Term], arity: Optional[int] = None):
        """All tuples of ``pred`` matching the (possibly variable) args.

        Predicates whose rules need demand bindings -- head variables only
        bound by the caller, like Figure 1's ``graphic_search(p(X,Y),...)``
        -- are answered demand-driven via the magic-sets rewrite instead of
        full materialization ("the appropriate parts of which are computed
        on demand", paper Section 2).
        """
        from repro.terms.matching import match_tuple

        arity = arity if arity is not None else len(args)
        args = tuple(args)
        if not self.can_materialize(pred, arity):
            return self.demand(pred, arity, args)
        relation = self.materialize(pred, arity)
        if _is_flat_query(args):
            # Bound positions route through the relation's hash indexes
            # (match_rows -> _candidate_rows) instead of a full scan.
            return list(relation.match_rows(args))
        out = []
        for row in relation.rows():
            bindings = match_tuple(args, row)
            if bindings is not None:
                out.append(row)
        return out

    def can_materialize(self, name: Term, arity: int) -> bool:
        """Can this predicate be fully computed bottom-up (all strata up to
        and including its own are range-restricted)?"""
        skeleton = pred_skeleton(name, arity)
        stratum_index = self._stratum_of.get(skeleton)
        if stratum_index is None:
            return False
        return all(
            self._stratum_safety(i) is None for i in range(stratum_index + 1)
        )

    def demand(self, name: Term, arity: int, patterns: Sequence[Term]) -> List[Row]:
        """All tuples matching ``patterns``, computed demand-driven.

        Ground argument positions become magic-seed bindings; results are
        cached per (predicate, ground-signature) until the EDB changes.
        """
        from repro.errors import UnsafeRuleError
        from repro.nail.magic import MagicTransformError
        from repro.terms.matching import match_tuple
        from repro.terms.term import Atom, fresh_var, is_ground

        self._refresh()
        patterns = tuple(patterns)
        skeleton = pred_skeleton(name, arity)
        if skeleton not in self.dep.rules_by_head:
            raise GlueRuntimeError(f"{name}/{arity} is not a NAIL! predicate")
        # Demand answers stay valid until the predicate's stratum sees a
        # relevant change -- tracked by the stratum's epoch, so writes to
        # relations outside the support set leave every entry alive.
        epoch = self._stratum_epoch[self._stratum_of[skeleton]]
        signature = tuple(p if is_ground(p) else None for p in patterns)
        key = (name, arity, signature)
        entry = self._demand_cache.get(key)
        cache_rel: Optional[Relation] = None
        if entry is not None:
            if entry[1] == epoch:
                cache_rel = entry[0]
                self.db.counters.idb_cache_hits += 1
            else:
                del self._demand_cache[key]
        if cache_rel is None:
            if skeleton[1] or not isinstance(name, Atom):
                # Compound-named family: magic cannot adorn it; fall back
                # to full materialization (raises if genuinely unsafe).
                relation = self.materialize(name, arity)
                answers = list(relation.rows())
            else:
                query_args = tuple(
                    p if is_ground(p) else fresh_var("Demand") for p in patterns
                )
                try:
                    answers, _engine = magic_query(
                        self.db,
                        [info.rule for info in self.rule_infos],
                        name,
                        query_args,
                        strategy=self.strategy,
                        join_mode=self.join_mode,
                        order_mode=self.order_mode,
                        parallel=self.parallel,
                        batch_mode=self.batch_mode,
                    )
                except MagicTransformError as exc:
                    if self.can_materialize(name, arity):
                        answers = list(self.materialize(name, arity).rows())
                    else:
                        raise UnsafeRuleError(
                            f"{name}/{arity} needs demand bindings but is outside "
                            f"the magic fragment: {exc}"
                        ) from exc
            # Answers live in a private Relation so residual filters can
            # route through its hash indexes instead of rescanning the
            # list; its counters are private too (cache-serving work is
            # not new evaluation cost).
            cache_rel = Relation(name, arity, index_policy=self.db.index_policy)
            cache_rel.insert_new(answers)
            self._demand_cache[key] = (cache_rel, epoch)
            if self.tracer.enabled:
                bound = sum(1 for p in signature if p is not None)
                self.tracer.event(
                    "demand", f"{name}/{arity}", rows=len(answers), bound_positions=bound
                )
        if _is_flat_query(patterns):
            return list(cache_rel.match_rows(patterns))
        return [
            row for row in cache_rel.rows() if match_tuple(patterns, row) is not None
        ]

    def view(self, name: Term, arity: int) -> "NailView":
        """A relation-like view for the Glue VM: selects materialize fully
        when possible and fall back to demand-driven evaluation."""
        return NailView(self, name, arity)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _refresh(self) -> None:
        """Reconcile every cached stratum with the current EDB state.

        Scans the fingerprints of the relations in the engine's support
        sets (skipped entirely while the databases' global versions are
        unmoved), classifies each changed relation as net-insert-only or
        not via its change journal, and then repairs or invalidates
        exactly the strata whose support actually changed.
        """
        global_now = (
            self.db.version,
            -1 if self.extra_edb is None else self.extra_edb.version,
        )
        if global_now == self._global_seen and self._edb_seen is not None:
            return
        sources = [self.db] if self.extra_edb is None else [self.db, self.extra_edb]
        first_scan = self._edb_seen is None
        old_seen = self._edb_seen if self._edb_seen is not None else {}
        new_seen: Dict[tuple, Tuple[int, int]] = {}
        inserts: Dict[Tuple[Term, int], List[Row]] = {}
        rebuild_skels: Set[Skeleton] = set()
        grow_skels: Set[Skeleton] = set()
        changed_versions: Dict[str, int] = {}
        for tag, source in enumerate(sources):
            for key, relation in source.snapshot_relations():
                skeleton = pred_skeleton(key[0], key[1])
                if not self._any_universal and skeleton not in self._relevant_skels:
                    continue
                relation.track_changes()
                seen_key = (tag, key)
                fp = relation.fingerprint
                new_seen[seen_key] = fp
                if first_scan:
                    continue
                old = old_seen.get(seen_key)
                if old == fp:
                    continue
                changed_versions[f"{key[0]}/{key[1]}"] = fp[1]
                if tag == 0 and self.extra_edb is not None and (
                    self.extra_edb.get(key[0], key[1]) is not None
                ):
                    # The extra EDB shadows this relation for rule bodies;
                    # a mixed view is not delta-repairable.
                    rebuild_skels.add(skeleton)
                    continue
                if old is None or old[0] != fp[0]:
                    # Newly visible relation (or dropped-and-redeclared,
                    # which gets a fresh uid).  An empty new relation is
                    # indistinguishable from an absent one -- a reader
                    # session's compile declares EDB relations on the
                    # shared catalog -- so it is no change at all.  A
                    # non-empty new one nets to inserting its extension.
                    rows = relation.copy_rows()
                    if old is None and not rows:
                        continue
                    net = (rows, []) if old is None else None
                else:
                    net = relation.changes_since(old[1])
                if net is None:
                    # The bounded change log overflowed (or the relation was
                    # redeclared): exact deltas are gone, dependents must be
                    # rebuilt.  Surface the precision loss instead of losing
                    # it silently -- subscribers diff snapshots or resync.
                    self.db.counters.idb_resyncs += 1
                    if self.tracer.enabled:
                        self.tracer.event(
                            "idb_resync",
                            f"{key[0]}/{key[1]}",
                            reason="changelog_overflow",
                        )
                    rebuild_skels.add(skeleton)
                    continue
                inserted, deleted = net
                if deleted:
                    rebuild_skels.add(skeleton)
                elif inserted:
                    grow_skels.add(skeleton)
                    inserts.setdefault(key, []).extend(inserted)
                # net == ([], []): the version moved but the content is
                # back where it was (a rolled-back transaction) -- caches
                # stay valid, nothing to do.
        if not first_scan:
            for seen_key, _old_fp in old_seen.items():
                if seen_key not in new_seen:
                    _tag, key = seen_key
                    self.db.counters.idb_resyncs += 1
                    if self.tracer.enabled:
                        self.tracer.event(
                            "idb_resync", f"{key[0]}/{key[1]}", reason="dropped"
                        )
                    rebuild_skels.add(pred_skeleton(key[0], key[1]))
                    changed_versions[f"{key[0]}/{key[1]}"] = -1
        self._edb_seen = new_seen
        self._global_seen = global_now
        if first_scan or not (rebuild_skels or grow_skels):
            return
        changed = rebuild_skels | grow_skels
        for index, support in enumerate(self.supports):
            if support.touches(changed):
                self._stratum_epoch[index] += 1
        self._propagate(inserts, rebuild_skels, changed_versions)

    def _propagate(
        self,
        inserts: Dict[Tuple[Term, int], List[Row]],
        rebuild_skels: Set[Skeleton],
        changed_versions: Dict[str, int],
    ) -> None:
        """Push EDB changes through the computed strata, bottom-up.

        Each computed stratum whose direct support intersects the changes
        is either repaired in place (monotone growth under the seminaive
        strategy: seed a delta from just the new tuples) or cleared for
        recomputation on next demand.  Both outcomes cascade: repair turns
        the stratum's own new tuples into the seed for the strata above,
        invalidation marks its skeletons as rebuilt so dependents are
        invalidated too.
        """
        counters = self.db.counters
        tracer = self.tracer if self.tracer.enabled else None
        rows_fn = self._rows_fn()
        for stratum in self.strata:
            index = stratum.index
            if not self._stratum_computed[index]:
                continue
            support = self.supports[index]
            grow_skels = {
                pred_skeleton(key[0], key[1]) for key, rows in inserts.items() if rows
            }
            if support.universal:
                touched_rebuild = set(rebuild_skels)
                touched_grow = set(grow_skels)
            else:
                touched_rebuild = rebuild_skels & support.direct
                touched_grow = grow_skels & support.direct
            if not touched_rebuild and not touched_grow:
                continue
            repair = (
                not touched_rebuild
                and self.strategy == "seminaive"
                and support.repairable(touched_grow)
            )
            if tracer is not None:
                tracer.event(
                    "idb_stale",
                    f"stratum {index}",
                    action="repair" if repair else "rebuild",
                    epoch=self._stratum_epoch[index],
                    changed=dict(changed_versions),
                )
            if not repair:
                counters.idb_invalidations += 1
                self._invalidate_stratum(stratum)
                for listener in self.delta_listeners:
                    listener.on_idb_rebuild(stratum.skeletons)
                rebuild_skels = rebuild_skels | stratum.skeletons
                continue
            # EDB facts inserted under this stratum's own predicates merge
            # into the derived relations first; only the genuinely new rows
            # seed the delta (they are this stratum's own growth).
            own_new: Dict[Tuple[Term, int], List[Row]] = {}
            for key in [k for k in inserts if pred_skeleton(k[0], k[1]) in stratum.skeletons]:
                fresh = uniondiff(self.idb.relation(key[0], key[1]), inserts.pop(key))
                if fresh:
                    own_new[key] = fresh
            seed: Dict[Tuple[Term, int], DeltaRelation] = {}
            for key, rows in list(inserts.items()) + list(own_new.items()):
                if rows:
                    store = seed[key] = DeltaRelation(self.idb.counters)
                    store.extend(rows)
            relevant = [
                info for info in self.rule_infos if info.head_skeleton in stratum.skeletons
            ]
            if tracer is None:
                rounds, new_rows = incremental_eval(
                    relevant, set(stratum.skeletons), rows_fn, self.idb, seed,
                    join_mode=self.join_mode, order_mode=self.order_mode,
                    parallel=self.parallel, batch_mode=self.batch_mode,
                )
            else:
                with tracer.span(
                    "stratum", f"stratum {index}", mode="repair", rules=len(relevant)
                ) as span:
                    rounds, new_rows = incremental_eval(
                        relevant, set(stratum.skeletons), rows_fn, self.idb, seed,
                        tracer=tracer, join_mode=self.join_mode,
                        order_mode=self.order_mode, parallel=self.parallel,
                        batch_mode=self.batch_mode,
                    )
                    span.attrs["rounds"] = rounds
            counters.idb_delta_repairs += 1
            counters.idb_delta_rounds += rounds
            # The stratum's growth -- seeded EDB facts plus repaired
            # derivations -- becomes the insert set the strata above see.
            for key, rows in own_new.items():
                new_rows.setdefault(key, []).extend(rows)
            for key, rows in new_rows.items():
                if rows:
                    inserts[key] = rows
                    for listener in self.delta_listeners:
                        listener.on_idb_delta(key, rows)

    def _invalidate_stratum(self, stratum: Stratum) -> None:
        """Clear the stratum's derived relations (preserving the Relation
        objects callers may hold) and mark it for recomputation."""
        for key, relation in list(self.idb.items()):
            if pred_skeleton(key[0], key[1]) in stratum.skeletons:
                relation.clear()
        self._stratum_computed[stratum.index] = False

    def _rows_fn(self) -> RowsFn:
        idb = self.idb
        db = self.db
        extra = self.extra_edb
        defines = self.dep.rules_by_head

        def rows(name: Term, arity: int) -> Optional[Relation]:
            # Hand the evaluator the Relation itself (or None): joins then
            # probe its hash indexes, and only genuine full scans charge
            # ``tuples_scanned`` -- the same cost currency as the Glue VM.
            skeleton = pred_skeleton(name, arity)
            if skeleton in defines:
                return idb.get(name, arity)
            if extra is not None:
                relation = extra.get(name, arity)
                if relation is not None:
                    return relation
            return db.get(name, arity)

        return rows

    def _stratum_safety(self, index: int) -> Optional[str]:
        """None when every rule in the stratum is range-restricted,
        otherwise the first safety error message (cached)."""
        from repro.errors import UnsafeRuleError
        from repro.nail.rules import check_rule_safety

        cached = self._stratum_safe.get(index)
        if cached is None and index not in self._stratum_safe:
            error: Optional[str] = None
            skeletons = self.strata[index].skeletons
            for info in self.rule_infos:
                if info.head_skeleton in skeletons:
                    try:
                        check_rule_safety(info.rule)
                    except UnsafeRuleError as exc:
                        error = str(exc)
                        break
            self._stratum_safe[index] = error
            return error
        return cached

    def _compute_through(self, stratum_index: int) -> None:
        pending = [
            stratum
            for stratum in self.strata[: stratum_index + 1]
            if not self._stratum_computed[stratum.index]
        ]
        if not pending:
            return
        from repro.errors import UnsafeRuleError

        for stratum in pending:
            error = self._stratum_safety(stratum.index)
            if error is not None:
                raise UnsafeRuleError(
                    f"cannot fully materialize stratum {stratum.index}: {error} "
                    "(use a demand-bound query instead)"
                )
        rows_fn = self._rows_fn()
        tracer = self.tracer if self.tracer.enabled else None
        for stratum in pending:
            relevant = [
                info for info in self.rule_infos if info.head_skeleton in stratum.skeletons
            ]
            if tracer is None:
                self._eval_stratum(stratum, relevant, rows_fn, None)
            else:
                with tracer.span(
                    "stratum", f"stratum {stratum.index}",
                    rules=len(relevant), strategy=self.strategy,
                ) as span:
                    self._eval_stratum(stratum, relevant, rows_fn, tracer)
                    span.attrs["rounds"] = self.rounds_run
            self._stratum_computed[stratum.index] = True

    def _eval_stratum(self, stratum, relevant, rows_fn, tracer) -> None:
        self._declare_heads(relevant)
        self._seed_from_edb(stratum.skeletons)
        if self.strategy == "naive":
            self.rounds_run = naive_eval(
                relevant, rows_fn, self.idb, tracer=tracer,
                join_mode=self.join_mode, order_mode=self.order_mode,
                parallel=self.parallel, batch_mode=self.batch_mode,
            )
        else:
            self.rounds_run = seminaive_eval(
                relevant,
                set(stratum.skeletons),
                rows_fn,
                self.idb,
                tracer=tracer,
                join_mode=self.join_mode,
                order_mode=self.order_mode,
                parallel=self.parallel,
                batch_mode=self.batch_mode,
            )

    def _seed_from_edb(self, skeletons) -> None:
        """EDB facts stored under a rule-defined name join the derived
        relation: a predicate may have both facts and rules (the usual
        Datalog union of EDB and IDB contributions)."""
        sources = [self.db] if self.extra_edb is None else [self.db, self.extra_edb]
        for source_db in sources:
            for name, arity in list(source_db.keys()):
                if pred_skeleton(name, arity) in skeletons:
                    # Bulk load: one version bump per relation, not per row.
                    self.idb.relation(name, arity).insert_new(
                        source_db.get(name, arity).rows()
                    )

    def _declare_heads(self, infos: Sequence[RuleInfo]) -> None:
        """Pre-create relations for ground-named heads so empty results
        still yield a (queryable, empty) relation."""
        for info in infos:
            base, chain, arity = info.head_skeleton
            if not chain:
                self.idb.declare(base, arity)


class NailView:
    """A relation-like facade over a NAIL! predicate for the Glue VM.

    Safe predicates delegate to the fully materialized relation; predicates
    that need demand bindings answer each ``select`` via the demand path.
    Only the relation operations the VM uses on derived predicates are
    provided (selection and rows; updates are rejected upstream).
    """

    __slots__ = ("engine", "name", "arity")

    def __init__(self, engine: NailEngine, name: Term, arity: int):
        self.engine = engine
        self.name = name
        self.arity = arity

    def select(self, patterns, bindings=None):
        from repro.terms.matching import match_tuple, substitute

        base = dict(bindings) if bindings else {}
        patterns = tuple(substitute(p, base) for p in patterns)
        if self.engine.can_materialize(self.name, self.arity):
            yield from self.engine.materialize(self.name, self.arity).select(patterns)
            return
        for row in self.engine.demand(self.name, self.arity, patterns):
            extended = match_tuple(patterns, row, base)
            if extended is not None:
                yield extended

    def joinable_relation(self):
        """The fully materialized Relation behind this view, or None when
        the predicate needs demand bindings (the VM's hash-join planner
        then falls back to per-row demand-driven selection)."""
        if self.engine.can_materialize(self.name, self.arity):
            return self.engine.materialize(self.name, self.arity)
        return None

    def rows(self):
        return self.engine.materialize(self.name, self.arity).rows()

    def sorted_rows(self):
        return self.engine.materialize(self.name, self.arity).sorted_rows()

    def __len__(self) -> int:
        return len(self.engine.materialize(self.name, self.arity))

    @property
    def version(self) -> int:
        return self.engine.materialize(self.name, self.arity).version


def magic_query(
    db: Database,
    rules: Sequence[RuleDecl],
    pred: Term,
    args: Sequence[Term],
    strategy: str = "seminaive",
    join_mode: str = "hash",
    order_mode: str = "cost",
    parallel=None,
    batch_mode: str = "columnar",
) -> Tuple[List[Row], "NailEngine"]:
    """Answer ``pred(args)`` demand-driven via the magic-sets rewrite.

    Returns the matching rows and the engine that evaluated the rewritten
    program (exposed so benchmarks can read its cost counters).  Falls back
    with :class:`~repro.nail.magic.MagicTransformError` when the rule slice
    is outside the transformable fragment; callers then use
    :meth:`NailEngine.query` on the full rules.
    """
    from repro.nail.magic import magic_transform
    from repro.terms.matching import match_tuple

    program = magic_transform(rules, pred, args)
    # Share the caller's counters so magic-vs-full cost comparisons also
    # see the (tiny) work done against the seed relation.
    seed_db = Database(counters=db.counters, columnar=db.columnar)
    seed_db.relation(program.seed_pred, program.seed_arity).insert(program.seed_row)
    engine = NailEngine(
        db,
        list(program.rules),
        strategy=strategy,
        check_safety=True,
        extra_edb=seed_db,
        join_mode=join_mode,
        order_mode=order_mode,
        parallel=parallel,
        batch_mode=batch_mode,
    )
    tracer = db.tracer
    if not tracer.enabled:
        relation = engine.materialize(program.answer_pred, len(args))
    else:
        with tracer.span(
            "magic", f"{pred}/{len(args)}", rewritten_rules=len(program.rules)
        ) as span:
            relation = engine.materialize(program.answer_pred, len(args))
            span.rows = len(relation)
    args = tuple(args)
    if _is_flat_query(args):
        answers = list(relation.match_rows(args))
    else:
        answers = [
            row for row in relation.rows() if match_tuple(args, row) is not None
        ]
    return answers, engine
