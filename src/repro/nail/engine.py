"""The NAIL! engine: on-demand, stratified, cached IDB evaluation.

A NAIL! predicate referenced from Glue (or queried directly) is computed
"on demand using the current value of the EDB" (paper Section 2).  The
engine caches derived relations and invalidates the cache whenever the EDB
version changes, so repeated references inside one EDB state cost nothing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.depgraph import build_dependency_graph
from repro.analysis.scope import Skeleton, pred_skeleton
from repro.analysis.stratify import Stratum, stratify
from repro.errors import GlueRuntimeError
from repro.lang.ast import PredSubgoal, RuleDecl
from repro.nail.bodyeval import RowsFn
from repro.nail.naive import naive_eval
from repro.nail.rules import RuleInfo, prepare_rules
from repro.nail.seminaive import seminaive_eval
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.terms.term import Term, Var, is_ground

Row = Tuple[Term, ...]


def _is_flat_query(args: Sequence[Term]) -> bool:
    """Flat pattern: every position is ground or a plain variable and the
    named variables are distinct -- the precondition of
    :meth:`~repro.storage.relation.Relation.match_rows`."""
    named = []
    for arg in args:
        if isinstance(arg, Var):
            if not arg.is_anonymous:
                named.append(arg.name)
        elif not is_ground(arg):
            return False
    return len(named) == len(set(named))


class NailEngine:
    """Evaluates a NAIL! rule set against an EDB.

    ``strategy`` selects the fixpoint algorithm: ``"seminaive"`` (the
    paper's uniondiff-based design) or ``"naive"`` (the baseline).
    ``join_mode`` selects how rule bodies are joined: ``"hash"`` (planned
    hash joins over indexed sources) or ``"nested"`` (the nested-loop
    baseline, kept for differential testing and cost comparisons).
    """

    def __init__(
        self,
        db: Database,
        rules: Sequence[RuleDecl],
        strategy: str = "seminaive",
        check_safety: bool = True,
        extra_edb: Optional[Database] = None,
        join_mode: str = "hash",
    ):
        if strategy not in ("seminaive", "naive"):
            raise ValueError(f"unknown NAIL! strategy {strategy!r}")
        if join_mode not in ("hash", "nested"):
            raise ValueError(f"unknown NAIL! join mode {join_mode!r}")
        self.db = db
        self.extra_edb = extra_edb
        self.strategy = strategy
        self.join_mode = join_mode
        self.rule_infos: List[RuleInfo] = prepare_rules(rules, check_safety=check_safety)
        self.dep = build_dependency_graph([info.rule for info in self.rule_infos])
        self.strata: List[Stratum] = stratify(self.dep)
        self._stratum_of: Dict[Skeleton, int] = {}
        for stratum in self.strata:
            for skeleton in stratum.skeletons:
                self._stratum_of[skeleton] = stratum.index
        self.tracer = db.tracer
        self.idb = Database(counters=db.counters, tracer=db.tracer)
        self._computed_through = -1
        self._edb_version_seen: Optional[int] = None
        self._stratum_safe: Dict[int, Optional[str]] = {}  # index -> error or None
        self._demand_cache: Dict[tuple, List[Row]] = {}
        self.rounds_run = 0  # fixpoint rounds in the last full evaluation

    # ------------------------------------------------------------------ #
    # public interface
    # ------------------------------------------------------------------ #

    def defines(self, skeleton: Skeleton) -> bool:
        """Does any rule define this predicate skeleton?"""
        return skeleton in self.dep.rules_by_head

    def materialize(self, name: Term, arity: int) -> Relation:
        """The full extension of a NAIL! predicate under the current EDB."""
        skeleton = pred_skeleton(name, arity)
        stratum_index = self._stratum_of.get(skeleton)
        if stratum_index is None:
            raise GlueRuntimeError(f"{name}/{arity} is not a NAIL! predicate")
        self._refresh()
        if stratum_index <= self._computed_through and self.tracer.enabled:
            # Repeated references inside one EDB state cost nothing, and
            # the trace should say so rather than show a silent gap.
            self.tracer.event("idb_cache_hit", f"{name}/{arity}")
        self._compute_through(stratum_index)
        return self.idb.relation(name, arity)

    def materialize_all(self) -> Database:
        """Evaluate every stratum; returns the IDB database."""
        self._refresh()
        self._compute_through(len(self.strata) - 1)
        return self.idb

    def query(self, pred: Term, args: Sequence[Term], arity: Optional[int] = None):
        """All tuples of ``pred`` matching the (possibly variable) args.

        Predicates whose rules need demand bindings -- head variables only
        bound by the caller, like Figure 1's ``graphic_search(p(X,Y),...)``
        -- are answered demand-driven via the magic-sets rewrite instead of
        full materialization ("the appropriate parts of which are computed
        on demand", paper Section 2).
        """
        from repro.terms.matching import match_tuple

        arity = arity if arity is not None else len(args)
        args = tuple(args)
        if not self.can_materialize(pred, arity):
            return self.demand(pred, arity, args)
        relation = self.materialize(pred, arity)
        if _is_flat_query(args):
            # Bound positions route through the relation's hash indexes
            # (match_rows -> _candidate_rows) instead of a full scan.
            return list(relation.match_rows(args))
        out = []
        for row in relation.rows():
            bindings = match_tuple(args, row)
            if bindings is not None:
                out.append(row)
        return out

    def can_materialize(self, name: Term, arity: int) -> bool:
        """Can this predicate be fully computed bottom-up (all strata up to
        and including its own are range-restricted)?"""
        skeleton = pred_skeleton(name, arity)
        stratum_index = self._stratum_of.get(skeleton)
        if stratum_index is None:
            return False
        return all(
            self._stratum_safety(i) is None for i in range(stratum_index + 1)
        )

    def demand(self, name: Term, arity: int, patterns: Sequence[Term]) -> List[Row]:
        """All tuples matching ``patterns``, computed demand-driven.

        Ground argument positions become magic-seed bindings; results are
        cached per (predicate, ground-signature) until the EDB changes.
        """
        from repro.errors import UnsafeRuleError
        from repro.nail.magic import MagicTransformError
        from repro.terms.matching import match_tuple
        from repro.terms.term import Atom, fresh_var, is_ground

        self._refresh()
        patterns = tuple(patterns)
        skeleton = pred_skeleton(name, arity)
        if skeleton not in self.dep.rules_by_head:
            raise GlueRuntimeError(f"{name}/{arity} is not a NAIL! predicate")
        signature = tuple(p if is_ground(p) else None for p in patterns)
        key = (name, arity, signature)
        cached = self._demand_cache.get(key)
        if cached is None:
            if skeleton[1] or not isinstance(name, Atom):
                # Compound-named family: magic cannot adorn it; fall back
                # to full materialization (raises if genuinely unsafe).
                relation = self.materialize(name, arity)
                cached = list(relation.rows())
            else:
                query_args = tuple(
                    p if is_ground(p) else fresh_var("Demand") for p in patterns
                )
                try:
                    answers, _engine = magic_query(
                        self.db,
                        [info.rule for info in self.rule_infos],
                        name,
                        query_args,
                        strategy=self.strategy,
                        join_mode=self.join_mode,
                    )
                    cached = answers
                except MagicTransformError as exc:
                    if self.can_materialize(name, arity):
                        cached = list(self.materialize(name, arity).rows())
                    else:
                        raise UnsafeRuleError(
                            f"{name}/{arity} needs demand bindings but is outside "
                            f"the magic fragment: {exc}"
                        ) from exc
            self._demand_cache[key] = cached
            if self.tracer.enabled:
                bound = sum(1 for p in signature if p is not None)
                self.tracer.event(
                    "demand", f"{name}/{arity}", rows=len(cached), bound_positions=bound
                )
        out = []
        for row in cached:
            if match_tuple(patterns, row) is not None:
                out.append(row)
        return out

    def view(self, name: Term, arity: int) -> "NailView":
        """A relation-like view for the Glue VM: selects materialize fully
        when possible and fall back to demand-driven evaluation."""
        return NailView(self, name, arity)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _refresh(self) -> None:
        version = self.db.version
        if self._edb_version_seen != version:
            # The EDB changed: every derived relation is stale.
            self.idb = Database(counters=self.db.counters, tracer=self.tracer)
            self._computed_through = -1
            self._demand_cache.clear()
            self._edb_version_seen = version

    def _rows_fn(self) -> RowsFn:
        idb = self.idb
        db = self.db
        extra = self.extra_edb
        defines = self.dep.rules_by_head

        def rows(name: Term, arity: int) -> Optional[Relation]:
            # Hand the evaluator the Relation itself (or None): joins then
            # probe its hash indexes, and only genuine full scans charge
            # ``tuples_scanned`` -- the same cost currency as the Glue VM.
            skeleton = pred_skeleton(name, arity)
            if skeleton in defines:
                return idb.get(name, arity)
            if extra is not None:
                relation = extra.get(name, arity)
                if relation is not None:
                    return relation
            return db.get(name, arity)

        return rows

    def _stratum_safety(self, index: int) -> Optional[str]:
        """None when every rule in the stratum is range-restricted,
        otherwise the first safety error message (cached)."""
        from repro.errors import UnsafeRuleError
        from repro.nail.rules import check_rule_safety

        cached = self._stratum_safe.get(index)
        if cached is None and index not in self._stratum_safe:
            error: Optional[str] = None
            skeletons = self.strata[index].skeletons
            for info in self.rule_infos:
                if info.head_skeleton in skeletons:
                    try:
                        check_rule_safety(info.rule)
                    except UnsafeRuleError as exc:
                        error = str(exc)
                        break
            self._stratum_safe[index] = error
            return error
        return cached

    def _compute_through(self, stratum_index: int) -> None:
        if stratum_index <= self._computed_through:
            return
        from repro.errors import UnsafeRuleError

        for index in range(self._computed_through + 1, stratum_index + 1):
            error = self._stratum_safety(index)
            if error is not None:
                raise UnsafeRuleError(
                    f"cannot fully materialize stratum {index}: {error} "
                    "(use a demand-bound query instead)"
                )
        rows_fn = self._rows_fn()
        tracer = self.tracer if self.tracer.enabled else None
        for stratum in self.strata[self._computed_through + 1 : stratum_index + 1]:
            relevant = [
                info for info in self.rule_infos if info.head_skeleton in stratum.skeletons
            ]
            if tracer is None:
                self._eval_stratum(stratum, relevant, rows_fn, None)
            else:
                with tracer.span(
                    "stratum", f"stratum {stratum.index}",
                    rules=len(relevant), strategy=self.strategy,
                ) as span:
                    self._eval_stratum(stratum, relevant, rows_fn, tracer)
                    span.attrs["rounds"] = self.rounds_run
        self._computed_through = stratum_index
        # Recompute freshness marker: materialization itself must not count
        # as an EDB change (it does not touch self.db).
        self._edb_version_seen = self.db.version

    def _eval_stratum(self, stratum, relevant, rows_fn, tracer) -> None:
        self._declare_heads(relevant)
        self._seed_from_edb(stratum.skeletons)
        if self.strategy == "naive":
            self.rounds_run = naive_eval(
                relevant, rows_fn, self.idb, tracer=tracer, join_mode=self.join_mode
            )
        else:
            self.rounds_run = seminaive_eval(
                relevant,
                set(stratum.skeletons),
                rows_fn,
                self.idb,
                tracer=tracer,
                join_mode=self.join_mode,
            )

    def _seed_from_edb(self, skeletons) -> None:
        """EDB facts stored under a rule-defined name join the derived
        relation: a predicate may have both facts and rules (the usual
        Datalog union of EDB and IDB contributions)."""
        sources = [self.db] if self.extra_edb is None else [self.db, self.extra_edb]
        for source_db in sources:
            for name, arity in list(source_db.keys()):
                if pred_skeleton(name, arity) in skeletons:
                    # Bulk load: one version bump per relation, not per row.
                    self.idb.relation(name, arity).insert_new(
                        source_db.get(name, arity).rows()
                    )

    def _declare_heads(self, infos: Sequence[RuleInfo]) -> None:
        """Pre-create relations for ground-named heads so empty results
        still yield a (queryable, empty) relation."""
        for info in infos:
            base, chain, arity = info.head_skeleton
            if not chain:
                self.idb.declare(base, arity)


class NailView:
    """A relation-like facade over a NAIL! predicate for the Glue VM.

    Safe predicates delegate to the fully materialized relation; predicates
    that need demand bindings answer each ``select`` via the demand path.
    Only the relation operations the VM uses on derived predicates are
    provided (selection and rows; updates are rejected upstream).
    """

    __slots__ = ("engine", "name", "arity")

    def __init__(self, engine: NailEngine, name: Term, arity: int):
        self.engine = engine
        self.name = name
        self.arity = arity

    def select(self, patterns, bindings=None):
        from repro.terms.matching import match_tuple, substitute

        base = dict(bindings) if bindings else {}
        patterns = tuple(substitute(p, base) for p in patterns)
        if self.engine.can_materialize(self.name, self.arity):
            yield from self.engine.materialize(self.name, self.arity).select(patterns)
            return
        for row in self.engine.demand(self.name, self.arity, patterns):
            extended = match_tuple(patterns, row, base)
            if extended is not None:
                yield extended

    def rows(self):
        return self.engine.materialize(self.name, self.arity).rows()

    def sorted_rows(self):
        return self.engine.materialize(self.name, self.arity).sorted_rows()

    def __len__(self) -> int:
        return len(self.engine.materialize(self.name, self.arity))

    @property
    def version(self) -> int:
        return self.engine.materialize(self.name, self.arity).version


def magic_query(
    db: Database,
    rules: Sequence[RuleDecl],
    pred: Term,
    args: Sequence[Term],
    strategy: str = "seminaive",
    join_mode: str = "hash",
) -> Tuple[List[Row], "NailEngine"]:
    """Answer ``pred(args)`` demand-driven via the magic-sets rewrite.

    Returns the matching rows and the engine that evaluated the rewritten
    program (exposed so benchmarks can read its cost counters).  Falls back
    with :class:`~repro.nail.magic.MagicTransformError` when the rule slice
    is outside the transformable fragment; callers then use
    :meth:`NailEngine.query` on the full rules.
    """
    from repro.nail.magic import magic_transform
    from repro.terms.matching import match_tuple

    program = magic_transform(rules, pred, args)
    # Share the caller's counters so magic-vs-full cost comparisons also
    # see the (tiny) work done against the seed relation.
    seed_db = Database(counters=db.counters)
    seed_db.relation(program.seed_pred, program.seed_arity).insert(program.seed_row)
    engine = NailEngine(
        db,
        list(program.rules),
        strategy=strategy,
        check_safety=True,
        extra_edb=seed_db,
        join_mode=join_mode,
    )
    tracer = db.tracer
    if not tracer.enabled:
        relation = engine.materialize(program.answer_pred, len(args))
    else:
        with tracer.span(
            "magic", f"{pred}/{len(args)}", rewritten_rules=len(program.rules)
        ) as span:
            relation = engine.materialize(program.answer_pred, len(args))
            span.rows = len(relation)
    args = tuple(args)
    if _is_flat_query(args):
        answers = list(relation.match_rows(args))
    else:
        answers = [
            row for row in relation.rows() if match_tuple(args, row) is not None
        ]
    return answers, engine
