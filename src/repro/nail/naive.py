"""Naive bottom-up evaluation: the baseline for experiment E6.

Re-derives everything from scratch each pass until no pass adds a tuple.
Correct, and wasteful in exactly the way the uniondiff-based seminaive
evaluation (paper Section 10) is designed to avoid.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.nail.bodyeval import RowsFn, derive_heads, eval_rule_body_batch
from repro.nail.rules import RuleInfo
from repro.storage.database import Database, pred_key
from repro.terms.term import Term

Row = Tuple[Term, ...]


def naive_eval(
    rule_infos: Sequence[RuleInfo],
    rows_fn: RowsFn,
    idb: Database,
    max_passes: int = 1_000_000,
    tracer=None,
    join_mode: str = "hash",
    order_mode: str = "cost",
    parallel=None,
    batch_mode: str = "columnar",
) -> int:
    """Run all rules to fixpoint, full re-derivation each pass.

    ``rows_fn`` resolves every predicate; derived tuples go into ``idb``
    (which ``rows_fn`` must consult for IDB names).  Returns the number of
    passes run.  ``tracer``, when given, receives one ``pass`` span per
    pass whose ``rows`` is the number of genuinely new tuples.
    ``join_mode`` and ``batch_mode`` are forwarded to the body evaluator.
    """
    passes = 0
    while True:
        passes += 1
        if passes > max_passes:
            raise RuntimeError("naive evaluation did not converge")
        if tracer is None:
            added = _run_pass(
                rule_infos, rows_fn, idb, join_mode, order_mode,
                parallel=parallel, batch_mode=batch_mode,
            )
        else:
            with tracer.span("pass", f"pass {passes}") as span:
                added = _run_pass(
                    rule_infos, rows_fn, idb, join_mode, order_mode, tracer,
                    parallel=parallel, batch_mode=batch_mode,
                )
                span.rows = added
        if added == 0:
            return passes


def _run_pass(
    rule_infos: Sequence[RuleInfo],
    rows_fn: RowsFn,
    idb: Database,
    join_mode: str = "hash",
    order_mode: str = "cost",
    tracer=None,
    parallel=None,
    batch_mode: str = "columnar",
) -> int:
    added = 0
    for info in rule_infos:
        bindings_list = eval_rule_body_batch(
            info, rows_fn, tracer=tracer, join_mode=join_mode,
            order_mode=order_mode, parallel=parallel, batch_mode=batch_mode,
        )
        for name, row in derive_heads(info, bindings_list):
            if idb.relation(name, len(row)).insert(row):
                added += 1
    return added
