"""Seminaive evaluation on top of the back end's uniondiff operator.

Paper Section 10: the back end "will implement a 'uniondiff' operator in
order to support compiled recursive NAIL! queries".  Each iteration joins
one *delta* occurrence per recursive literal against the accumulated
relations; ``uniondiff`` inserts the round's derivations and hands back
exactly the genuinely new tuples, which become the next delta.

Deltas are stored as :class:`DeltaRelation` objects -- join sources in the
sense of :mod:`repro.nail.bodyeval` -- so the hash-join evaluator probes a
per-key hash map built once per round instead of rescanning the delta list
once per accumulated binding.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.scope import Skeleton, pred_skeleton
from repro.lang.ast import PredSubgoal
from repro.nail.bodyeval import RowsFn, derive_heads, eval_rule_body_batch
from repro.nail.rules import RuleInfo
from repro.storage.database import Database
from repro.storage.stats import CostCounters
from repro.storage.uniondiff import uniondiff
from repro.terms.term import Term

Row = Tuple[Term, ...]


class DeltaRelation:
    """One round's delta for one predicate, as an indexed join source.

    The row list is append-only within a round; hash tables (one per probed
    column set) and the membership set are built lazily on first probe and
    invalidated when the delta grows.  Costs are charged to the owning
    database's counters: full scans to ``tuples_scanned`` (deltas count the
    same as relation scans), hash builds and probes to the index ledgers.
    """

    __slots__ = ("rows", "counters", "_tables", "_set", "_id_cols")

    def __init__(self, counters: Optional[CostCounters] = None):
        self.rows: List[Row] = []
        self.counters = counters
        self._tables: Dict[Tuple[int, ...], dict] = {}
        self._set = None
        # Interned broadcast columns (see broadcast_columns), invalidated
        # whenever the delta grows -- like the lazy hash tables above.
        self._id_cols: dict = {}

    def extend(self, rows: Iterable[Row]) -> None:
        self.rows.extend(rows)
        if self._tables:
            self._tables = {}
        self._set = None
        if self._id_cols:
            self._id_cols = {}

    def __len__(self) -> int:
        return len(self.rows)

    def scan(self):
        if self.counters is not None:
            self.counters.tuples_scanned += len(self.rows)
        return self.rows

    def probe(self, cols: Tuple[int, ...], key: Row):
        table = self._tables.get(cols)
        if table is None:
            table = {}
            for row in self.rows:
                table.setdefault(tuple(row[c] for c in cols), []).append(row)
            self._tables[cols] = table
            if self.counters is not None:
                self.counters.index_builds += 1
                self.counters.index_build_tuples += len(self.rows)
        hits = table.get(key, ())
        if self.counters is not None:
            self.counters.index_lookups += 1
            self.counters.index_probe_tuples += len(hits)
        return hits

    def contains(self, row: Row) -> bool:
        if self._set is None:
            self._set = set(self.rows)
        if tuple(row) in self._set:
            if self.counters is not None:
                self.counters.index_probe_tuples += 1
            return True
        return False

    def broadcast_columns(self, ctx, extract_cols: Tuple[int, ...]):
        """Interned id-columns for broadcasting this delta (see
        ``repro.col.kernels.run_broadcast``).

        Every rule in a round that broadcasts the same (unchanged) delta
        re-used to re-intern it from scratch -- pure overhead, since the
        columns only change when the delta grows.  Each call still charges
        one full scan, exactly like ``scan()``, so the cache never shows
        up in the counters (parity with the row engine's per-group scan).
        """
        if self.counters is not None:
            self.counters.tuples_scanned += len(self.rows)
        atoms = ctx.atoms
        key = (id(atoms), extract_cols)
        cached = self._id_cols.get(key)
        if cached is None:
            intern = atoms.intern
            cached = tuple(
                [intern(row[c]) for row in self.rows] for c in extract_cols
            )
            self._id_cols[key] = cached
        return cached

    # Pre-builds for partition-parallel probing (see repro.par): the lazy
    # builds above are unsynchronized, so the coordinator forces them
    # before fanning a join out.  Charges match a first serial probe.

    def ensure_table(self, cols: Tuple[int, ...]) -> None:
        if cols in self._tables:
            return
        table: dict = {}
        for row in self.rows:
            table.setdefault(tuple(row[c] for c in cols), []).append(row)
        self._tables[cols] = table
        if self.counters is not None:
            self.counters.index_builds += 1
            self.counters.index_build_tuples += len(self.rows)

    def ensure_set(self) -> None:
        if self._set is None:
            self._set = set(self.rows)


DeltaStore = Dict[Tuple[Term, int], DeltaRelation]


def _recursive_positions(info: RuleInfo, stratum: Set[Skeleton]) -> List[int]:
    """Indexes of body literals whose skeleton is in the current stratum."""
    positions: List[int] = []
    for index, subgoal in enumerate(info.rule.body):
        if isinstance(subgoal, PredSubgoal) and not subgoal.negated:
            skeleton = pred_skeleton(subgoal.pred, len(subgoal.args))
            if skeleton in stratum:
                positions.append(index)
    return positions


def _delta_rows_fn(delta: DeltaStore) -> RowsFn:
    def rows(name: Term, arity: int):
        return delta.get((name, arity))  # None -> the empty source

    return rows


def _merge_derivations(
    derivations: Iterable[Tuple[Term, Row]], idb: Database, delta: DeltaStore
) -> None:
    """uniondiff the derivations into the IDB; new tuples extend the delta."""
    grouped: Dict[Tuple[Term, int], List[Row]] = {}
    for name, row in derivations:
        grouped.setdefault((name, len(row)), []).append(row)
    for (name, arity), rows in grouped.items():
        new_rows = uniondiff(idb.relation(name, arity), rows)
        if new_rows:
            store = delta.get((name, arity))
            if store is None:
                store = delta[(name, arity)] = DeltaRelation(idb.counters)
            store.extend(new_rows)


def _delta_size(delta: DeltaStore) -> int:
    return sum(len(store) for store in delta.values())


def seminaive_eval(
    rule_infos: Sequence[RuleInfo],
    stratum: Set[Skeleton],
    rows_fn: RowsFn,
    idb: Database,
    max_rounds: int = 1_000_000,
    tracer=None,
    join_mode: str = "hash",
    order_mode: str = "cost",
    parallel=None,
    batch_mode: str = "columnar",
) -> int:
    """Evaluate one stratum to fixpoint with seminaive iteration.

    ``rule_infos`` must be exactly the rules whose heads are in
    ``stratum``; ``rows_fn`` resolves every predicate (EDB, lower strata,
    and the current stratum's accumulating relations in ``idb``).  Returns
    the number of rounds.  ``tracer``, when given, receives one ``round``
    span per fixpoint round with per-rule ``rule`` events inside it.
    ``join_mode`` and ``batch_mode`` are forwarded to the body evaluator.
    """
    relevant = [info for info in rule_infos if info.head_skeleton in stratum]
    delta: DeltaStore = {}

    # Round 0: evaluate every rule in full (base facts plus anything the
    # lower strata already provide).
    if tracer is None:
        for info in relevant:
            bindings_list = eval_rule_body_batch(
                info, rows_fn, join_mode=join_mode, order_mode=order_mode,
                parallel=parallel, batch_mode=batch_mode,
            )
            _merge_derivations(derive_heads(info, bindings_list), idb, delta)
    else:
        with tracer.span("round", "round 0", rules=len(relevant)) as span:
            for i, info in enumerate(relevant):
                with tracer.span("rule", _rule_label(i, info)) as rule_span:
                    bindings_list = eval_rule_body_batch(
                        info, rows_fn, tracer=tracer, join_mode=join_mode,
                        order_mode=order_mode, parallel=parallel, batch_mode=batch_mode,
                    )
                    _merge_derivations(derive_heads(info, bindings_list), idb, delta)
                    rule_span.rows = len(bindings_list)
            span.rows = _delta_size(delta)

    rounds = 1
    recursive = [
        (info, positions)
        for info in relevant
        if (positions := _recursive_positions(info, stratum))
    ]
    if not recursive:
        return rounds

    while delta:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("seminaive evaluation did not converge")
        delta_fn = _delta_rows_fn(delta)
        new_delta: DeltaStore = {}
        if tracer is None:
            for info, positions in recursive:
                for position in positions:
                    bindings_list = eval_rule_body_batch(
                        info,
                        rows_fn,
                        delta_index=position,
                        delta_rows_fn=delta_fn,
                        join_mode=join_mode, order_mode=order_mode, parallel=parallel, batch_mode=batch_mode,
                    )
                    _merge_derivations(
                        derive_heads(info, bindings_list), idb, new_delta
                    )
        else:
            with tracer.span(
                "round", f"round {rounds - 1}", delta_in=_delta_size(delta)
            ) as span:
                for i, (info, positions) in enumerate(recursive):
                    for position in positions:
                        with tracer.span(
                            "rule", _rule_label(i, info), delta_pos=position
                        ) as rule_span:
                            bindings_list = eval_rule_body_batch(
                                info,
                                rows_fn,
                                delta_index=position,
                                delta_rows_fn=delta_fn,
                                tracer=tracer,
                                join_mode=join_mode, order_mode=order_mode, parallel=parallel, batch_mode=batch_mode,
                            )
                            _merge_derivations(
                                derive_heads(info, bindings_list), idb, new_delta
                            )
                            rule_span.rows = len(bindings_list)
                span.rows = _delta_size(new_delta)
        delta = new_delta
    return rounds


def incremental_eval(
    rule_infos: Sequence[RuleInfo],
    stratum: Set[Skeleton],
    rows_fn: RowsFn,
    idb: Database,
    seed_delta: DeltaStore,
    max_rounds: int = 1_000_000,
    tracer=None,
    join_mode: str = "hash",
    order_mode: str = "cost",
    parallel=None,
    batch_mode: str = "columnar",
) -> Tuple[int, Dict[Tuple[Term, int], List[Row]]]:
    """Repair one *already-computed* stratum after monotone growth.

    ``seed_delta`` holds just the newly inserted tuples, per predicate --
    EDB inserts, new tuples from repaired lower strata, and EDB facts
    seeded into this stratum's own predicates.  The pass is the seminaive
    delta trick run from that seed instead of from an empty IDB: round 0
    joins each rule once per body occurrence of a changed predicate (delta
    there, current values everywhere else), and the genuinely new head
    tuples -- found by ``uniondiff`` against the existing relations --
    iterate through the stratum's recursive positions exactly like an
    ordinary seminaive fixpoint.

    Only valid for growth the stratum is monotone in (the caller checks
    :class:`~repro.nail.rules.StratumSupport`): no negated or aggregated
    dependency on a changed predicate.  Returns ``(rounds, new_rows)``
    where ``new_rows`` maps each of this stratum's predicates to the rows
    added -- the seed delta for repairing the strata above.
    """
    relevant = [info for info in rule_infos if info.head_skeleton in stratum]
    seed_skels = {
        pred_skeleton(name, arity) for (name, arity) in seed_delta
    }
    seed_fn = _delta_rows_fn(seed_delta)
    delta: DeltaStore = {}

    def _seed_positions(info: RuleInfo):
        for position, subgoal in enumerate(info.rule.body):
            if not isinstance(subgoal, PredSubgoal) or subgoal.negated:
                continue
            skeleton = pred_skeleton(subgoal.pred, len(subgoal.args))
            # A predicate-variable literal (base None) may resolve to any
            # changed relation; concrete literals must match a seed key.
            if skeleton[0] is not None and skeleton not in seed_skels:
                continue
            yield position

    if tracer is None:
        for info in relevant:
            for position in _seed_positions(info):
                bindings_list = eval_rule_body_batch(
                    info,
                    rows_fn,
                    delta_index=position,
                    delta_rows_fn=seed_fn,
                    join_mode=join_mode, order_mode=order_mode, parallel=parallel, batch_mode=batch_mode,
                )
                _merge_derivations(derive_heads(info, bindings_list), idb, delta)
    else:
        with tracer.span(
            "incremental_round", "seed", delta_in=_delta_size(seed_delta)
        ) as span:
            for i, info in enumerate(relevant):
                for position in _seed_positions(info):
                    with tracer.span(
                        "rule", _rule_label(i, info), delta_pos=position
                    ) as rule_span:
                        bindings_list = eval_rule_body_batch(
                            info,
                            rows_fn,
                            delta_index=position,
                            delta_rows_fn=seed_fn,
                            tracer=tracer,
                            join_mode=join_mode, order_mode=order_mode, parallel=parallel, batch_mode=batch_mode,
                        )
                        _merge_derivations(
                            derive_heads(info, bindings_list), idb, delta
                        )
                        rule_span.rows = len(bindings_list)
            span.rows = _delta_size(delta)

    rounds = 1
    new_rows: Dict[Tuple[Term, int], List[Row]] = {}
    recursive = [
        (info, positions)
        for info in relevant
        if (positions := _recursive_positions(info, stratum))
    ]
    while delta:
        for key, store in delta.items():
            new_rows.setdefault(key, []).extend(store.rows)
        if not recursive:
            break
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("incremental evaluation did not converge")
        delta_fn = _delta_rows_fn(delta)
        new_delta: DeltaStore = {}
        if tracer is None:
            for info, positions in recursive:
                for position in positions:
                    bindings_list = eval_rule_body_batch(
                        info,
                        rows_fn,
                        delta_index=position,
                        delta_rows_fn=delta_fn,
                        join_mode=join_mode, order_mode=order_mode, parallel=parallel, batch_mode=batch_mode,
                    )
                    _merge_derivations(
                        derive_heads(info, bindings_list), idb, new_delta
                    )
        else:
            with tracer.span(
                "incremental_round",
                f"round {rounds - 1}",
                delta_in=_delta_size(delta),
            ) as span:
                for i, (info, positions) in enumerate(recursive):
                    for position in positions:
                        with tracer.span(
                            "rule", _rule_label(i, info), delta_pos=position
                        ) as rule_span:
                            bindings_list = eval_rule_body_batch(
                                info,
                                rows_fn,
                                delta_index=position,
                                delta_rows_fn=delta_fn,
                                tracer=tracer,
                                join_mode=join_mode, order_mode=order_mode, parallel=parallel, batch_mode=batch_mode,
                            )
                            _merge_derivations(
                                derive_heads(info, bindings_list), idb, new_delta
                            )
                            rule_span.rows = len(bindings_list)
                span.rows = _delta_size(new_delta)
        delta = new_delta
    return rounds, new_rows


def _rule_label(index: int, info: RuleInfo) -> str:
    skeleton = info.head_skeleton  # (base name, application chain, arity)
    return f"rule#{index} {skeleton[0]}/{skeleton[-1]}"
