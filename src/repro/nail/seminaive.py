"""Seminaive evaluation on top of the back end's uniondiff operator.

Paper Section 10: the back end "will implement a 'uniondiff' operator in
order to support compiled recursive NAIL! queries".  Each iteration joins
one *delta* occurrence per recursive literal against the accumulated
relations; ``uniondiff`` inserts the round's derivations and hands back
exactly the genuinely new tuples, which become the next delta.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.analysis.scope import Skeleton, pred_skeleton
from repro.lang.ast import PredSubgoal
from repro.nail.bodyeval import RowsFn, derive_heads, eval_rule_body
from repro.nail.rules import RuleInfo
from repro.storage.database import Database
from repro.storage.uniondiff import uniondiff
from repro.terms.term import Term

Row = Tuple[Term, ...]
DeltaStore = Dict[Tuple[Term, int], List[Row]]


def _recursive_positions(info: RuleInfo, stratum: Set[Skeleton]) -> List[int]:
    """Indexes of body literals whose skeleton is in the current stratum."""
    positions: List[int] = []
    for index, subgoal in enumerate(info.rule.body):
        if isinstance(subgoal, PredSubgoal) and not subgoal.negated:
            skeleton = pred_skeleton(subgoal.pred, len(subgoal.args))
            if skeleton in stratum:
                positions.append(index)
    return positions


def _delta_rows_fn(delta: DeltaStore) -> RowsFn:
    def rows(name: Term, arity: int) -> Iterable[Row]:
        return delta.get((name, arity), ())

    return rows


def _merge_derivations(
    derivations: Iterable[Tuple[Term, Row]], idb: Database, delta: DeltaStore
) -> None:
    """uniondiff the derivations into the IDB; new tuples extend the delta."""
    grouped: Dict[Tuple[Term, int], List[Row]] = {}
    for name, row in derivations:
        grouped.setdefault((name, len(row)), []).append(row)
    for (name, arity), rows in grouped.items():
        new_rows = uniondiff(idb.relation(name, arity), rows)
        if new_rows:
            delta.setdefault((name, arity), []).extend(new_rows)


def _delta_size(delta: DeltaStore) -> int:
    return sum(len(rows) for rows in delta.values())


def seminaive_eval(
    rule_infos: Sequence[RuleInfo],
    stratum: Set[Skeleton],
    rows_fn: RowsFn,
    idb: Database,
    max_rounds: int = 1_000_000,
    tracer=None,
) -> int:
    """Evaluate one stratum to fixpoint with seminaive iteration.

    ``rule_infos`` must be exactly the rules whose heads are in
    ``stratum``; ``rows_fn`` resolves every predicate (EDB, lower strata,
    and the current stratum's accumulating relations in ``idb``).  Returns
    the number of rounds.  ``tracer``, when given, receives one ``round``
    span per fixpoint round with per-rule ``rule`` events inside it.
    """
    relevant = [info for info in rule_infos if info.head_skeleton in stratum]
    delta: DeltaStore = {}

    # Round 0: evaluate every rule in full (base facts plus anything the
    # lower strata already provide).
    if tracer is None:
        for info in relevant:
            bindings_list = eval_rule_body(info.rule, rows_fn)
            _merge_derivations(derive_heads(info.rule, bindings_list), idb, delta)
    else:
        with tracer.span("round", "round 0", rules=len(relevant)) as span:
            for i, info in enumerate(relevant):
                with tracer.span("rule", _rule_label(i, info)) as rule_span:
                    bindings_list = eval_rule_body(info.rule, rows_fn)
                    _merge_derivations(
                        derive_heads(info.rule, bindings_list), idb, delta
                    )
                    rule_span.rows = len(bindings_list)
            span.rows = _delta_size(delta)

    rounds = 1
    recursive = [
        (info, positions)
        for info in relevant
        if (positions := _recursive_positions(info, stratum))
    ]
    if not recursive:
        return rounds

    while delta:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("seminaive evaluation did not converge")
        delta_fn = _delta_rows_fn(delta)
        new_delta: DeltaStore = {}
        if tracer is None:
            for info, positions in recursive:
                for position in positions:
                    bindings_list = eval_rule_body(
                        info.rule, rows_fn, delta_index=position, delta_rows_fn=delta_fn
                    )
                    _merge_derivations(
                        derive_heads(info.rule, bindings_list), idb, new_delta
                    )
        else:
            with tracer.span(
                "round", f"round {rounds - 1}", delta_in=_delta_size(delta)
            ) as span:
                for i, (info, positions) in enumerate(recursive):
                    for position in positions:
                        with tracer.span(
                            "rule", _rule_label(i, info), delta_pos=position
                        ) as rule_span:
                            bindings_list = eval_rule_body(
                                info.rule,
                                rows_fn,
                                delta_index=position,
                                delta_rows_fn=delta_fn,
                            )
                            _merge_derivations(
                                derive_heads(info.rule, bindings_list), idb, new_delta
                            )
                            rule_span.rows = len(bindings_list)
                span.rows = _delta_size(new_delta)
        delta = new_delta
    return rounds


def _rule_label(index: int, info: RuleInfo) -> str:
    skeleton = info.head_skeleton  # (base name, application chain, arity)
    return f"rule#{index} {skeleton[0]}/{skeleton[-1]}"
