"""Magic-sets transformation: demand-driven NAIL! query evaluation.

NAIL! predicates are computed on demand and only "the appropriate parts"
(paper Section 2).  For a query with bound arguments the engine rewrites
the relevant rules with magic predicates so that bottom-up evaluation only
derives tuples relevant to the demand.  The transformation follows the
classic left-to-right sideways-information-passing strategy.

HiLog interplay: predicate-variable body literals are treated as EDB
lookups (their name must be bound by the time they are reached), and a
parameterized predicate such as ``tc(E, X, Y)`` becomes evaluable even when
its plain bottom-up reading is unsafe -- the magic seed supplies the
bindings, exactly the reading the paper's Section 5.2 example needs.

Hash-join interplay: rewritten rule bodies place the magic literal first,
so the hash-join evaluator (:mod:`repro.nail.bodyeval`) broadcasts the
(small) magic relation once and then *probes* every subsequent literal on
the demand-bound columns -- the magic bindings become hash keys, and the
per-round cost tracks the demanded subgraph rather than the full EDB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.bindings import expr_has_agg, expr_vars, term_vars
from repro.analysis.scope import pred_skeleton
from repro.lang.ast import CompareSubgoal, GroupBySubgoal, PredSubgoal, RuleDecl
from repro.terms.term import Atom, Term, Var, is_ground

Adornment = str  # e.g. "bbf"


from repro.errors import GlueNailError


class MagicTransformError(GlueNailError):
    """The rule slice is outside the transformable fragment (negation on
    IDB predicates, aggregates, or compound-named heads)."""


@dataclass(frozen=True)
class MagicProgram:
    """The output of the transformation."""

    rules: Tuple[RuleDecl, ...]
    answer_pred: Term
    seed_pred: Term
    seed_row: Tuple[Term, ...]
    adornment: Adornment

    @property
    def seed_arity(self) -> int:
        return len(self.seed_row)


def _adorned_name(name: str, adornment: Adornment) -> Atom:
    return Atom(f"{name}@{adornment}")


def _magic_name(name: str, adornment: Adornment) -> Atom:
    return Atom(f"magic@{name}@{adornment}")


def _literal_adornment(args: Sequence[Term], bound: Set[str]) -> Adornment:
    out = []
    for arg in args:
        free = term_vars(arg) - bound
        out.append("f" if free else "b")
    return "".join(out)


def _bound_args(args: Sequence[Term], adornment: Adornment) -> Tuple[Term, ...]:
    return tuple(arg for arg, a in zip(args, adornment) if a == "b")


def magic_transform(
    rules: Sequence[RuleDecl], query_pred: Term, query_args: Sequence[Term]
) -> MagicProgram:
    """Rewrite ``rules`` for the query ``query_pred(query_args)``.

    ``query_args`` may mix constants (bound) and variables (free); at least
    one argument should be bound for the transformation to pay off, though
    an all-free query is legal (it degenerates to full evaluation with a
    trivially-true magic seed).
    """
    if not isinstance(query_pred, Atom):
        raise MagicTransformError("magic transformation needs an atom-named query")
    arity = len(query_args)
    idb: Set[Tuple[str, int]] = set()
    rules_by_pred: Dict[Tuple[str, int], List[RuleDecl]] = {}
    hilog_bases: Set[str] = set()
    for rule in rules:
        skeleton = pred_skeleton(rule.head_pred, len(rule.head_args))
        if skeleton[1]:
            # Compound-named (HiLog family) heads cannot be adorned; they
            # only poison the transform if the query actually reaches them
            # (checked during the walk below).
            if skeleton[0] is not None:
                hilog_bases.add(skeleton[0])
            continue
        key = (skeleton[0], skeleton[2])
        idb.add(key)
        rules_by_pred.setdefault(key, []).append(rule)
    if (query_pred.name, arity) not in idb:
        raise MagicTransformError(f"{query_pred.name}/{arity} has no rules")

    query_adornment = "".join(
        "b" if is_ground(arg) else "f" for arg in query_args
    )

    out_rules: List[RuleDecl] = []
    done: Set[Tuple[str, int, Adornment]] = set()
    queue: List[Tuple[str, int, Adornment]] = [(query_pred.name, arity, query_adornment)]

    while queue:
        name, pred_arity, adornment = queue.pop()
        if (name, pred_arity, adornment) in done:
            continue
        done.add((name, pred_arity, adornment))
        for rule in rules_by_pred.get((name, pred_arity), ()):
            out_rules.extend(
                _transform_rule(rule, name, adornment, idb, queue, hilog_bases)
            )

    return MagicProgram(
        rules=tuple(out_rules),
        answer_pred=_adorned_name(query_pred.name, query_adornment),
        seed_pred=_magic_name(query_pred.name, query_adornment),
        seed_row=tuple(a for a in query_args if is_ground(a)),
        adornment=query_adornment,
    )


def _transform_rule(
    rule: RuleDecl,
    name: str,
    adornment: Adornment,
    idb: Set[Tuple[str, int]],
    queue: List[Tuple[str, int, Adornment]],
    hilog_bases: Set[str] = frozenset(),
) -> List[RuleDecl]:
    """Adorn one rule for one head adornment; returns the rewritten rule
    plus the magic rules it spawns."""
    out: List[RuleDecl] = []
    head_args = rule.head_args
    magic_head_args = _bound_args(head_args, adornment)
    magic_literal = PredSubgoal(
        pred=_magic_name(name, adornment), args=magic_head_args
    )

    bound: Set[str] = set()
    for arg in magic_head_args:
        bound |= term_vars(arg)

    new_body: List[object] = [magic_literal]
    for subgoal in rule.body:
        if isinstance(subgoal, CompareSubgoal):
            if expr_has_agg(subgoal.left) or expr_has_agg(subgoal.right):
                raise MagicTransformError("aggregates are outside the magic fragment")
            new_body.append(subgoal)
            if subgoal.op == "=" and isinstance(subgoal.left, Var):
                if not (expr_vars(subgoal.right) - bound):
                    bound.add(subgoal.left.name)
            if subgoal.op == "=" and isinstance(subgoal.right, Var):
                if not (expr_vars(subgoal.left) - bound):
                    bound.add(subgoal.right.name)
            continue
        if isinstance(subgoal, GroupBySubgoal):
            raise MagicTransformError("group_by is outside the magic fragment")
        assert isinstance(subgoal, PredSubgoal)
        skeleton = pred_skeleton(subgoal.pred, len(subgoal.args))
        if skeleton[1] and skeleton[0] in hilog_bases:
            # The query reaches a compound-named (HiLog family) IDB
            # predicate, which magic cannot adorn: fall back to full eval.
            raise MagicTransformError(
                f"query reaches compound-named IDB predicate {subgoal.pred}"
            )
        key = (skeleton[0], skeleton[2])
        is_idb = skeleton[0] is not None and not skeleton[1] and key in idb
        if subgoal.negated:
            if is_idb:
                raise MagicTransformError(
                    f"negated IDB literal !{subgoal.pred} is outside the magic fragment"
                )
            new_body.append(subgoal)
            continue
        if not is_idb:
            # EDB or predicate-variable literal: a plain join.
            new_body.append(subgoal)
            for arg in subgoal.args:
                bound |= term_vars(arg)
            bound |= term_vars(subgoal.pred)
            continue
        # An IDB literal: compute its adornment, emit its magic rule, and
        # replace it by its adorned version.
        literal_ad = _literal_adornment(subgoal.args, bound)
        magic_rule = RuleDecl(
            head_pred=_magic_name(skeleton[0], literal_ad),
            head_args=_bound_args(subgoal.args, literal_ad),
            body=tuple(new_body),
            line=rule.line,
        )
        out.append(magic_rule)
        queue.append((skeleton[0], skeleton[2], literal_ad))
        new_body.append(
            PredSubgoal(pred=_adorned_name(skeleton[0], literal_ad), args=subgoal.args)
        )
        for arg in subgoal.args:
            bound |= term_vars(arg)

    out.append(
        RuleDecl(
            head_pred=_adorned_name(name, adornment),
            head_args=head_args,
            body=tuple(new_body),
            line=rule.line,
        )
    )
    return out
