"""Rule preparation: safety (range restriction), structural checks, and
per-rule join precompilation.

The :class:`JoinPlanner` computes, once per (body literal, bound-variable
set), everything the hash-join evaluator needs at run time: which argument
positions are constants, which carry the shared-variable join key, which
extract new bindings, and which need general term matching.  Round-time
work in the evaluator is then key build + hash probe instead of a
``substitute``/``match_tuple`` pair per accumulated binding per tuple.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.bindings import expr_has_agg, expr_vars, term_vars
from repro.analysis.scope import Skeleton, pred_skeleton
from repro.errors import UnsafeRuleError
from repro.lang.ast import (
    AggCall,
    BinOp,
    CompareSubgoal,
    FunCall,
    GroupBySubgoal,
    PredSubgoal,
    RuleDecl,
    UnaryOp,
)
from repro.opt.literal import LiteralPlan
from repro.opt.literal import classify_join_columns as _classify_join_columns
from repro.opt.literal import compile_literal_plan as _compile_literal_plan
from repro.terms.term import Term, Var, variables

__all__ = [
    "JoinPlanner",
    "LiteralPlan",
    "RuleInfo",
    "StratumSupport",
    "check_rule_safety",
    "classify_join_columns",
    "compile_literal_plan",
    "compute_stratum_supports",
    "order_body_for_evaluation",
    "prepare_rules",
    "terms_free",
]


def classify_join_columns(
    pred: Term, args: Sequence[Term], bound: FrozenSet[str]
) -> LiteralPlan:
    """Deprecated shim: moved to :func:`repro.opt.classify_join_columns`
    (it is now a pass of the shared planner).  Import it from ``repro.opt``
    -- this re-export will be removed next release."""
    warnings.warn(
        "repro.nail.rules.classify_join_columns moved to repro.opt; "
        "import it from there (this shim will be removed next release)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _classify_join_columns(pred, args, bound)


def compile_literal_plan(subgoal: PredSubgoal, bound: FrozenSet[str]) -> LiteralPlan:
    """Deprecated shim: moved to :func:`repro.opt.compile_literal_plan`.
    Import it from ``repro.opt`` -- this re-export will be removed next
    release."""
    warnings.warn(
        "repro.nail.rules.compile_literal_plan moved to repro.opt; "
        "import it from there (this shim will be removed next release)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _compile_literal_plan(subgoal, bound)


def _expr_var_occurrences(expr) -> List[str]:
    """Named variables in an expression, first-appearance order."""
    if isinstance(expr, Term):
        return [v.name for v in variables(expr) if not v.is_anonymous]
    if isinstance(expr, BinOp):
        return _expr_var_occurrences(expr.left) + _expr_var_occurrences(expr.right)
    if isinstance(expr, UnaryOp):
        return _expr_var_occurrences(expr.operand)
    if isinstance(expr, (FunCall, AggCall)):
        out: List[str] = []
        args = expr.args if isinstance(expr, FunCall) else (expr.arg,)
        for arg in args:
            out.extend(_expr_var_occurrences(arg))
        return out
    return []


class JoinPlanner:
    """Per-rule cache of literal join plans, keyed by bound-variable set.

    Plans depend on which variables are bound *before* a literal, which the
    evaluator only knows at run time (seeds and binding comparisons can
    change it), so plans are compiled lazily and memoized per
    ``(literal index, bound-set)``.  One planner lives on each
    :class:`RuleInfo` and is shared by every evaluation of that rule.
    """

    __slots__ = ("rule", "var_order", "_plans", "last_plan")

    def __init__(self, rule: RuleDecl):
        self.rule = rule
        # The most recent cost-mode Plan for this rule (observability:
        # EXPLAIN renders the chosen join order and estimates from it).
        self.last_plan = None
        order: List[str] = []
        seen: Set[str] = set()
        for subgoal in rule.body:
            if isinstance(subgoal, PredSubgoal):
                names = [
                    v.name
                    for t in (subgoal.pred, *subgoal.args)
                    for v in variables(t)
                    if not v.is_anonymous
                ]
            elif isinstance(subgoal, CompareSubgoal):
                names = _expr_var_occurrences(subgoal.left) + _expr_var_occurrences(
                    subgoal.right
                )
            elif isinstance(subgoal, GroupBySubgoal):
                names = [t.name for t in subgoal.terms if isinstance(t, Var)]
            else:
                names = []
            for name in names:
                if name not in seen:
                    seen.add(name)
                    order.append(name)
        # A precomputed dedup key order for the whole rule (satellite: no
        # per-binding sort in _dedup_bindings).
        self.var_order: Tuple[str, ...] = tuple(order)
        self._plans: Dict[Tuple[int, FrozenSet[str]], LiteralPlan] = {}

    def plan_for(self, index: int, bound: FrozenSet[str]) -> LiteralPlan:
        key = (index, bound)
        plan = self._plans.get(key)
        if plan is None:
            plan = _compile_literal_plan(self.rule.body[index], bound)
            self._plans[key] = plan
        return plan


@dataclass(frozen=True)
class RuleInfo:
    """A NAIL! rule plus its precomputed structure."""

    rule: RuleDecl
    head_skeleton: Skeleton
    body_skeletons: Tuple[Skeleton, ...]  # positive literals only, in order
    has_negation: bool
    has_aggregate: bool
    planner: Optional[JoinPlanner] = field(default=None, compare=False, repr=False)
    neg_skeletons: Tuple[Skeleton, ...] = ()  # negated literals, in order

    @property
    def head_vars(self) -> Set[str]:
        out = term_vars(self.rule.head_pred)
        for arg in self.rule.head_args:
            out |= term_vars(arg)
        return out


def _allowed_subgoal(subgoal) -> bool:
    return isinstance(subgoal, (PredSubgoal, CompareSubgoal, GroupBySubgoal))


def check_rule_safety(rule: RuleDecl, demand_bound: Set[str] = frozenset()) -> None:
    """Check range restriction: every variable in the head (and every
    variable used by negation, comparison filters or aggregates) must be
    bound by a positive body literal.

    ``demand_bound`` names variables bound externally (by a magic
    predicate); plain bottom-up evaluation passes the empty set.
    """
    bound: Set[str] = set(demand_bound)
    for subgoal in rule.body:
        if not _allowed_subgoal(subgoal):
            raise UnsafeRuleError(
                f"NAIL! rules may not contain {type(subgoal).__name__} subgoals"
            )
        if isinstance(subgoal, PredSubgoal):
            pred_free = term_vars(subgoal.pred) - bound
            if pred_free:
                raise UnsafeRuleError(
                    f"predicate variable(s) {sorted(pred_free)} unbound when "
                    f"evaluating {subgoal.pred}"
                )
            if subgoal.negated:
                free = terms_free(subgoal.args, bound)
                if free:
                    raise UnsafeRuleError(
                        f"negated literal uses unbound variables {sorted(free)}"
                    )
            else:
                for arg in subgoal.args:
                    bound |= term_vars(arg)
        elif isinstance(subgoal, CompareSubgoal):
            if subgoal.op == "=" and isinstance(subgoal.left, Var) and (
                subgoal.left.name not in bound
            ):
                free = expr_vars(subgoal.right) - bound
                if free:
                    raise UnsafeRuleError(
                        f"binding comparison uses unbound variables {sorted(free)}"
                    )
                bound.add(subgoal.left.name)
            else:
                free = (expr_vars(subgoal.left) | expr_vars(subgoal.right)) - bound
                if free:
                    raise UnsafeRuleError(
                        f"comparison uses unbound variables {sorted(free)}"
                    )
        elif isinstance(subgoal, GroupBySubgoal):
            free = terms_free(subgoal.terms, bound)
            if free:
                raise UnsafeRuleError(f"group_by over unbound variables {sorted(free)}")
    head_free = (term_vars(rule.head_pred) | terms_free(rule.head_args, set())) - bound
    if head_free:
        raise UnsafeRuleError(
            f"rule for {rule.head_pred} is not range-restricted: head variables "
            f"{sorted(head_free)} are not bound by the body"
        )


def terms_free(terms: Sequence, bound: Set[str]) -> Set[str]:
    free: Set[str] = set()
    for term in terms:
        free |= term_vars(term) - bound
    return free


def order_body_for_evaluation(rule: RuleDecl) -> RuleDecl:
    """Reorder a rule body into an evaluable left-to-right schedule.

    NAIL! is declarative: subgoal order carries no meaning (aggregation
    boundaries aside), so the engine schedules literals so that negation,
    comparisons and predicate-variable names are bound before use --
    e.g. in ``tc(G)(X, Z) :- tc(G)(X, Y) & e(G, Y, Z)`` the EDB literal
    runs first to bind the family parameter ``G``.
    """
    from repro.analysis.reorder import reorder_body

    ordered = tuple(reorder_body(list(rule.body)))
    if ordered == rule.body:
        return rule
    return RuleDecl(
        head_pred=rule.head_pred,
        head_args=rule.head_args,
        body=ordered,
        line=rule.line,
    )


def prepare_rules(
    rules: Sequence[RuleDecl], check_safety: bool = True, reorder: bool = True
) -> List[RuleInfo]:
    infos: List[RuleInfo] = []
    for rule in rules:
        if reorder:
            rule = order_body_for_evaluation(rule)
        if check_safety:
            check_rule_safety(rule)
        body_skeletons = []
        neg_skeletons = []
        has_neg = False
        has_agg = False
        for subgoal in rule.body:
            if isinstance(subgoal, PredSubgoal):
                if subgoal.negated:
                    has_neg = True
                    neg_skeletons.append(pred_skeleton(subgoal.pred, len(subgoal.args)))
                else:
                    body_skeletons.append(pred_skeleton(subgoal.pred, len(subgoal.args)))
            elif isinstance(subgoal, CompareSubgoal):
                if expr_has_agg(subgoal.left) or expr_has_agg(subgoal.right):
                    has_agg = True
        infos.append(
            RuleInfo(
                rule=rule,
                head_skeleton=pred_skeleton(rule.head_pred, len(rule.head_args)),
                body_skeletons=tuple(body_skeletons),
                has_negation=has_neg,
                has_aggregate=has_agg,
                planner=JoinPlanner(rule),
                neg_skeletons=tuple(neg_skeletons),
            )
        )
    return infos


# ---------------------------------------------------------------------- #
# dependency support sets (incremental IDB maintenance)
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class StratumSupport:
    """What one stratum's cached extension depends on.

    ``direct`` are the skeletons its rules read in the body (positive and
    negated) plus the stratum's own head skeletons (EDB facts stored under
    a rule-defined name seed the derived relation).  ``transitive`` closes
    ``direct`` over lower strata down to EDB leaves: the cached extension
    is stale exactly when a relation matching one of these changed.

    ``blocking`` names the skeletons whose *growth* cannot be repaired by
    monotone delta propagation -- inputs read under negation or feeding an
    aggregate -- so a change there forces full (but stratum-scoped)
    recomputation.  ``universal`` marks strata reading through predicate
    variables (the support set is then the whole EDB); ``blocks_all``
    additionally forces rebuild on any change (a negated or aggregated
    predicate-variable literal, whose inputs are unknowable statically).
    """

    direct: FrozenSet[Skeleton]
    blocking: FrozenSet[Skeleton]
    transitive: FrozenSet[Skeleton]
    universal: bool
    blocks_all: bool

    def touches(self, changed: Set[Skeleton]) -> bool:
        return self.universal or bool(self.transitive & changed)

    def repairable(self, changed: Set[Skeleton]) -> bool:
        """Can growth of ``changed`` be propagated as a seminaive delta?"""
        return not self.blocks_all and not (self.blocking & changed)


def compute_stratum_supports(rule_infos, strata) -> List[StratumSupport]:
    """Per-stratum dependency support sets, in stratum order.

    Strata arrive bottom-up (from :func:`repro.analysis.stratify.stratify`)
    so each transitive set is built from the already-finished sets of the
    strata below it.
    """
    stratum_of: Dict[Skeleton, int] = {}
    for stratum in strata:
        for skeleton in stratum.skeletons:
            stratum_of[skeleton] = stratum.index
    supports: List[StratumSupport] = []
    for stratum in strata:
        direct: Set[Skeleton] = set(stratum.skeletons)
        blocking: Set[Skeleton] = set()
        universal = False
        blocks_all = False
        for info in rule_infos:
            if info.head_skeleton not in stratum.skeletons:
                continue
            inputs = set(info.body_skeletons) | set(info.neg_skeletons)
            direct |= inputs
            if any(skel[0] is None for skel in info.body_skeletons):
                universal = True  # predicate variable: may read any relation
            if info.has_aggregate:
                # The aggregate needs the complete extension of everything
                # the rule ranges over; growth there is non-monotone.
                blocking |= inputs
                if any(skel[0] is None for skel in inputs):
                    blocks_all = True
            for skel in info.neg_skeletons:
                if skel[0] is None:
                    blocks_all = True
                else:
                    blocking.add(skel)
        transitive: Set[Skeleton] = set(stratum.skeletons)
        for skel in direct:
            lower = stratum_of.get(skel)
            if lower is None:
                if skel[0] is not None:
                    transitive.add(skel)  # an EDB leaf
            elif lower < stratum.index:
                transitive |= supports[lower].transitive
                universal = universal or supports[lower].universal
        supports.append(
            StratumSupport(
                direct=frozenset(direct),
                blocking=frozenset(blocking),
                transitive=frozenset(transitive),
                universal=universal,
                blocks_all=blocks_all,
            )
        )
    return supports
