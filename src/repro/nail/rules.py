"""Rule preparation: safety (range restriction) and structural checks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.analysis.bindings import expr_has_agg, expr_vars, term_vars
from repro.analysis.scope import Skeleton, pred_skeleton
from repro.errors import UnsafeRuleError
from repro.lang.ast import CompareSubgoal, GroupBySubgoal, PredSubgoal, RuleDecl
from repro.terms.term import Var


@dataclass(frozen=True)
class RuleInfo:
    """A NAIL! rule plus its precomputed structure."""

    rule: RuleDecl
    head_skeleton: Skeleton
    body_skeletons: Tuple[Skeleton, ...]  # positive literals only, in order
    has_negation: bool
    has_aggregate: bool

    @property
    def head_vars(self) -> Set[str]:
        out = term_vars(self.rule.head_pred)
        for arg in self.rule.head_args:
            out |= term_vars(arg)
        return out


def _allowed_subgoal(subgoal) -> bool:
    return isinstance(subgoal, (PredSubgoal, CompareSubgoal, GroupBySubgoal))


def check_rule_safety(rule: RuleDecl, demand_bound: Set[str] = frozenset()) -> None:
    """Check range restriction: every variable in the head (and every
    variable used by negation, comparison filters or aggregates) must be
    bound by a positive body literal.

    ``demand_bound`` names variables bound externally (by a magic
    predicate); plain bottom-up evaluation passes the empty set.
    """
    bound: Set[str] = set(demand_bound)
    for subgoal in rule.body:
        if not _allowed_subgoal(subgoal):
            raise UnsafeRuleError(
                f"NAIL! rules may not contain {type(subgoal).__name__} subgoals"
            )
        if isinstance(subgoal, PredSubgoal):
            pred_free = term_vars(subgoal.pred) - bound
            if pred_free:
                raise UnsafeRuleError(
                    f"predicate variable(s) {sorted(pred_free)} unbound when "
                    f"evaluating {subgoal.pred}"
                )
            if subgoal.negated:
                free = terms_free(subgoal.args, bound)
                if free:
                    raise UnsafeRuleError(
                        f"negated literal uses unbound variables {sorted(free)}"
                    )
            else:
                for arg in subgoal.args:
                    bound |= term_vars(arg)
        elif isinstance(subgoal, CompareSubgoal):
            if subgoal.op == "=" and isinstance(subgoal.left, Var) and (
                subgoal.left.name not in bound
            ):
                free = expr_vars(subgoal.right) - bound
                if free:
                    raise UnsafeRuleError(
                        f"binding comparison uses unbound variables {sorted(free)}"
                    )
                bound.add(subgoal.left.name)
            else:
                free = (expr_vars(subgoal.left) | expr_vars(subgoal.right)) - bound
                if free:
                    raise UnsafeRuleError(
                        f"comparison uses unbound variables {sorted(free)}"
                    )
        elif isinstance(subgoal, GroupBySubgoal):
            free = terms_free(subgoal.terms, bound)
            if free:
                raise UnsafeRuleError(f"group_by over unbound variables {sorted(free)}")
    head_free = (term_vars(rule.head_pred) | terms_free(rule.head_args, set())) - bound
    if head_free:
        raise UnsafeRuleError(
            f"rule for {rule.head_pred} is not range-restricted: head variables "
            f"{sorted(head_free)} are not bound by the body"
        )


def terms_free(terms: Sequence, bound: Set[str]) -> Set[str]:
    free: Set[str] = set()
    for term in terms:
        free |= term_vars(term) - bound
    return free


def order_body_for_evaluation(rule: RuleDecl) -> RuleDecl:
    """Reorder a rule body into an evaluable left-to-right schedule.

    NAIL! is declarative: subgoal order carries no meaning (aggregation
    boundaries aside), so the engine schedules literals so that negation,
    comparisons and predicate-variable names are bound before use --
    e.g. in ``tc(G)(X, Z) :- tc(G)(X, Y) & e(G, Y, Z)`` the EDB literal
    runs first to bind the family parameter ``G``.
    """
    from repro.analysis.reorder import reorder_body

    ordered = tuple(reorder_body(list(rule.body)))
    if ordered == rule.body:
        return rule
    return RuleDecl(
        head_pred=rule.head_pred,
        head_args=rule.head_args,
        body=ordered,
        line=rule.line,
    )


def prepare_rules(
    rules: Sequence[RuleDecl], check_safety: bool = True, reorder: bool = True
) -> List[RuleInfo]:
    infos: List[RuleInfo] = []
    for rule in rules:
        if reorder:
            rule = order_body_for_evaluation(rule)
        if check_safety:
            check_rule_safety(rule)
        body_skeletons = []
        has_neg = False
        has_agg = False
        for subgoal in rule.body:
            if isinstance(subgoal, PredSubgoal):
                if subgoal.negated:
                    has_neg = True
                else:
                    body_skeletons.append(pred_skeleton(subgoal.pred, len(subgoal.args)))
            elif isinstance(subgoal, CompareSubgoal):
                if expr_has_agg(subgoal.left) or expr_has_agg(subgoal.right):
                    has_agg = True
        infos.append(
            RuleInfo(
                rule=rule,
                head_skeleton=pred_skeleton(rule.head_pred, len(rule.head_args)),
                body_skeletons=tuple(body_skeletons),
                has_negation=has_neg,
                has_aggregate=has_agg,
            )
        )
    return infos
