"""Bindings-based evaluation of NAIL! rule bodies.

The native engine evaluates rule bodies over binding dictionaries rather
than compiled positional plans: seminaive evaluation substitutes a *delta*
relation for one literal occurrence per pass, which is simplest with an
interpretive evaluator.  (The compiled path is the NAIL!-to-Glue pipeline,
which reuses the Glue VM.)

Joins are hash joins.  For each body literal the rule's
:class:`~repro.nail.rules.JoinPlanner` precomputes the shared-variable
join key, the constant positions and a flat extraction template, so
round-time work is key build + hash probe instead of rescanning the whole
relation once per accumulated binding (``O(|B|+|R|)`` instead of
``O(|B| x |R|)``).  Sources are *indexed*: ``rows_fn`` may hand back a
:class:`~repro.storage.relation.Relation` (probed through its persistent,
incrementally-maintained hash indexes), a seminaive
:class:`~repro.nail.seminaive.DeltaRelation` (per-key hash maps built once
per round), or any plain iterable (hashed on first probe).  Negation runs
as a hash anti-join, and a fully-ground negated literal is a single
membership test.  The pre-hash-join nested-loop evaluator is retained
under ``join_mode="nested"`` as a differential/costing baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.bindings import expr_has_agg
from repro.col import Batch, encode_dicts, project_batch, run_broadcast, run_member, run_probe
from repro.errors import GlueRuntimeError
from repro.glue.aggregates import apply_aggregate
from repro.glue.builtins import compare_terms, eval_function, term_arith
from repro.lang.ast import (
    AggCall,
    BinOp,
    CompareSubgoal,
    FunCall,
    GroupBySubgoal,
    PredSubgoal,
    RuleDecl,
    UnaryOp,
)
from repro.nail.rules import JoinPlanner, RuleInfo
from repro.opt import LiteralPlan, Plan
from repro.opt import optimize as _optimize
from repro.par.partition import chunk_bounds
from repro.terms.matching import instantiate, match, match_tuple, substitute
from repro.terms.term import Atom, Num, Term, Var, is_ground

Bindings = Dict[str, Term]
Row = Tuple[Term, ...]

_TRUE = Atom("true")
_FALSE = Atom("false")

# rows(name, arity) -> the stored rows for that predicate instance: a
# Relation, a DeltaRelation, any iterable of ground rows, or None.
RowsFn = Callable[[Term, int], object]


def eval_expr_bindings(expr, bindings: Bindings) -> Term:
    """Evaluate an aggregate-free expression under a bindings dict."""
    if isinstance(expr, Num):
        return expr
    if isinstance(expr, Var):
        value = bindings.get(expr.name)
        if value is None:
            raise GlueRuntimeError(f"unbound variable {expr.name} in expression")
        return value
    if isinstance(expr, Term):
        return instantiate(expr, bindings)
    if isinstance(expr, BinOp):
        return term_arith(
            expr.op,
            eval_expr_bindings(expr.left, bindings),
            eval_expr_bindings(expr.right, bindings),
        )
    if isinstance(expr, UnaryOp):
        return term_arith("-", Num(0), eval_expr_bindings(expr.operand, bindings))
    if isinstance(expr, FunCall):
        args = tuple(eval_expr_bindings(a, bindings) for a in expr.args)
        return eval_function(expr.name, args)
    raise GlueRuntimeError(f"cannot evaluate expression {expr!r}")


# ---------------------------------------------------------------------- #
# join sources
# ---------------------------------------------------------------------- #


class _EmptySource:
    """The source for an absent relation."""

    def __len__(self) -> int:
        return 0

    def scan(self):
        return ()

    def probe(self, cols, key):
        return ()

    def contains(self, row) -> bool:
        return False


_EMPTY_SOURCE = _EmptySource()


class _RelationSource:
    """A Relation as a join source: probes go through its persistent hash
    indexes (built on first use, maintained incrementally on insert, so a
    seminaive IDB relation is indexed once and stays indexed as it grows)."""

    __slots__ = ("relation",)

    def __init__(self, relation):
        self.relation = relation

    def __len__(self) -> int:
        return len(self.relation)

    def scan(self):
        relation = self.relation
        relation.counters.tuples_scanned += len(relation)
        return relation.rows()

    def probe(self, cols: Tuple[int, ...], key: Row):
        relation = self.relation
        hits = relation.build_index(cols).bucket(key)
        relation.counters.index_lookups += 1
        relation.counters.index_probe_tuples += len(hits)
        return hits

    def contains(self, row: Row) -> bool:
        if tuple(row) in self.relation:
            self.relation.counters.index_probe_tuples += 1
            return True
        return False

    def broadcast_columns(self, ctx, extract_cols: Tuple[int, ...]):
        """Cached-encode broadcast (see ``run_broadcast``): charges the
        full scan exactly like ``scan()``, then reuses the context's
        version-keyed interned columns for the actual encode."""
        relation = self.relation
        relation.counters.tuples_scanned += len(relation)
        return ctx.broadcast_columns(relation, extract_cols)


class _IterSource:
    """A plain iterable of rows as a join source (tests, ad-hoc callers)."""

    __slots__ = ("rows", "_tables", "_set")

    def __init__(self, rows):
        self.rows = rows if isinstance(rows, (list, tuple)) else list(rows)
        self._tables: dict = {}
        self._set = None

    def __len__(self) -> int:
        return len(self.rows)

    def scan(self):
        return self.rows

    def probe(self, cols: Tuple[int, ...], key: Row):
        table = self._tables.get(cols)
        if table is None:
            table = {}
            for row in self.rows:
                table.setdefault(tuple(row[c] for c in cols), []).append(row)
            self._tables[cols] = table
        return table.get(key, ())

    def contains(self, row: Row) -> bool:
        if self._set is None:
            self._set = set(self.rows)
        return tuple(row) in self._set

    # Pre-builds for partition-parallel probing (see repro.par): probe()
    # and contains() build lazily without synchronization, so the
    # coordinator forces the state before fanning out.

    def ensure_table(self, cols: Tuple[int, ...]) -> None:
        if cols not in self._tables:
            table: dict = {}
            for row in self.rows:
                table.setdefault(tuple(row[c] for c in cols), []).append(row)
            self._tables[cols] = table

    def ensure_set(self) -> None:
        if self._set is None:
            self._set = set(self.rows)


def _as_source(obj):
    """Adapt whatever ``rows_fn`` returned to the join-source protocol."""
    if obj is None:
        return _EMPTY_SOURCE
    if isinstance(obj, (list, tuple)):
        return _IterSource(obj) if obj else _EMPTY_SOURCE
    if hasattr(obj, "probe") and hasattr(obj, "scan"):
        return obj  # already a join source (e.g. seminaive DeltaRelation)
    if hasattr(obj, "build_index") and hasattr(obj, "match_rows"):
        return _RelationSource(obj)
    return _IterSource(obj)


# ---------------------------------------------------------------------- #
# hash joins
# ---------------------------------------------------------------------- #


def _probe_key(key_cols, b: Bindings) -> Row:
    return tuple(
        value if kind == "const" else b[value] for _, kind, value in key_cols
    )


def _join_group(
    group: List[Bindings], source, plan: LiteralPlan, out: List[Bindings]
) -> str:
    """Join one homogeneously-bound group of bindings against a source.

    Returns the strategy label used (for the tracer).
    """
    key_cols = plan.key_cols
    probe_cols = plan.probe_cols
    if plan.complex_cols and (plan.complex_has_bound or plan.has_var_keys):
        # Residual path: some argument is a compound containing variables,
        # so candidates (narrowed by the hash probe when a key exists)
        # still go through general matching.
        for b in group:
            patterns = tuple(substitute(arg, b) for arg in plan.patterns)
            if probe_cols:
                candidates = source.probe(probe_cols, _probe_key(key_cols, b))
            else:
                candidates = source.scan()
            for row in candidates:
                extended = match_tuple(patterns, row, b)
                if extended is not None:
                    out.append(extended)
        return "probe+match" if probe_cols else "scan+match"
    if plan.has_var_keys:
        # The hot path: hash probe on the shared-variable key, then flat
        # extraction of the new variables straight off each matching row.
        extract = plan.extract
        eq_checks = plan.eq_checks
        complex_cols = plan.complex_cols
        for b in group:
            key = _probe_key(key_cols, b)
            for row in source.probe(probe_cols, key):
                if eq_checks and any(row[c] != row[c0] for c, c0 in eq_checks):
                    continue
                extended = dict(b)
                for col, name in extract:
                    extended[name] = row[col]
                if complex_cols:
                    ok = True
                    for col, pat in complex_cols:
                        matched = match(pat, row[col], extended)
                        if matched is None:
                            ok = False
                            break
                        extended = matched
                    if not ok:
                        continue
                out.append(extended)
        return "probe"
    # No shared variables: every binding matches the same candidate rows,
    # so compute the extension fragments once and broadcast them.
    if probe_cols:
        candidates = source.probe(probe_cols, _probe_key(key_cols, {}))
    else:
        candidates = source.scan()
    fragments: List[Bindings] = []
    for row in candidates:
        if plan.eq_checks and any(row[c] != row[c0] for c, c0 in plan.eq_checks):
            continue
        fragment: Bindings = {}
        for col, name in plan.extract:
            fragment[name] = row[col]
        ok = True
        for col, pat in plan.complex_cols:
            matched = match(pat, row[col], fragment)
            if matched is None:
                ok = False
                break
            fragment = matched
        if ok:
            fragments.append(fragment)
    if fragments:
        for b in group:
            for fragment in fragments:
                if fragment:
                    extended = dict(b)
                    extended.update(fragment)
                    out.append(extended)
                else:
                    out.append(b)
    return "broadcast"


def _row_survives(row: Row, plan: LiteralPlan) -> bool:
    """Does a probed candidate satisfy the literal's residual constraints?
    (Negation treats new variables as existential wildcards.)"""
    if plan.eq_checks and any(row[c] != row[c0] for c, c0 in plan.eq_checks):
        return False
    if plan.complex_cols:
        fragment: Bindings = {}
        for col, name in plan.extract:
            fragment[name] = row[col]
        for col, pat in plan.complex_cols:
            matched = match(pat, row[col], fragment)
            if matched is None:
                return False
            fragment = matched
    return True


def _antijoin_group(
    group: List[Bindings], source, plan: LiteralPlan, out: List[Bindings]
) -> str:
    """Keep the bindings with *no* matching row: a hash anti-join."""
    key_cols = plan.key_cols
    probe_cols = plan.probe_cols
    if plan.complex_cols and (plan.complex_has_bound or plan.has_var_keys):
        for b in group:
            patterns = tuple(substitute(arg, b) for arg in plan.patterns)
            if probe_cols:
                candidates = source.probe(probe_cols, _probe_key(key_cols, b))
            else:
                candidates = source.scan()
            if not any(match_tuple(patterns, row, b) is not None for row in candidates):
                out.append(b)
        return "anti-match"
    if plan.has_var_keys:
        if plan.covers_all_columns:
            # Fully ground after substitution: one membership test each.
            for b in group:
                if not source.contains(_probe_key(key_cols, b)):
                    out.append(b)
            return "member"
        for b in group:
            hits = source.probe(probe_cols, _probe_key(key_cols, b))
            if not any(_row_survives(row, plan) for row in hits):
                out.append(b)
        return "anti-probe"
    # No bound variables at all: the test has one answer for the whole group.
    if probe_cols:
        candidates = source.probe(probe_cols, _probe_key(key_cols, {}))
    else:
        candidates = source.scan()
    if not any(_row_survives(row, plan) for row in candidates):
        out.extend(group)
    return "anti-static"


def _run_partition(runner, chunk, source, plan):
    """One worker's share of a grouped join: a private output list."""
    out: List[Bindings] = []
    strategy = runner(chunk, source, plan, out)
    return out, strategy


def _parallel_group(
    parallel, group, source, plan: LiteralPlan, runner, out, tracer, label
) -> Optional[str]:
    """Try to run one homogeneous binding group split across the pool.

    Returns the strategy label on success, or None to fall back to the
    serial join.  Only per-binding strategies split (probe / probe+match /
    member / anti-probe / anti-match / scan+match): each worker runs the
    *same* ``runner`` code over its share of the bindings, so a parallel
    join performs exactly the probes a serial join performs and the cost
    counters come out identical.  The group-level strategies (broadcast /
    anti-static compute one shared fragment set) and HiLog
    predicate-variable literals stay serial -- see the fallback matrix in
    docs/PERFORMANCE.md.
    """
    if not parallel.active or len(group) < 2 * parallel.min_partition_rows:
        return None
    residual = bool(plan.complex_cols) and (plan.complex_has_bound or plan.has_var_keys)
    if not plan.has_var_keys and not residual:
        return None  # broadcast / anti-static: group-level work
    from repro.par import (
        Partitioner,
        choose_exchange,
        prepare_contains_source,
        prepare_probe_source,
    )

    anti = runner is _antijoin_group
    member = anti and not residual and plan.covers_all_columns
    if member:
        if not prepare_contains_source(source):
            return None
    elif not prepare_probe_source(source, plan.probe_cols):
        return None
    decision = choose_exchange(
        source, () if member else plan.probe_cols, parallel.broadcast_rows
    )
    partitioner = Partitioner(parallel.partition_count(len(group)))
    if decision.strategy == "shuffle":
        key_cols = plan.key_cols
        parts = [
            p
            for p in partitioner.hash_split(
                group, lambda b: _probe_key(key_cols, b)
            )
            if p
        ]
    else:
        parts = partitioner.chunk_split(group)
    if len(parts) < 2:
        return None
    if tracer is not None and tracer.enabled:
        tracer.event(
            "exchange",
            label,
            strategy=decision.strategy,
            source=len(source),
            bindings=len(group),
            partitions=len(parts),
            est_rows=decision.est_matches,
        )
    results = parallel.run_region(
        [
            (lambda chunk=chunk: _run_partition(runner, chunk, source, plan))
            for chunk in parts
        ],
        label=label,
        tracer=tracer,
        strategy=decision.strategy,
        partition_rows=[len(p) for p in parts],
    )
    strategy = None
    for chunk_out, chunk_strategy in results:
        out.extend(chunk_out)
        strategy = chunk_strategy
    return f"{strategy}+{decision.strategy}"


def _grouped_literal(
    bindings_list: List[Bindings],
    index: int,
    subgoal: PredSubgoal,
    rows_fn: RowsFn,
    planner: JoinPlanner,
    tracer,
    runner,
    est_rows: Optional[float] = None,
    parallel=None,
) -> List[Bindings]:
    """Run ``runner`` (join or anti-join) per homogeneous binding group.

    Bindings are grouped by their bound-variable signature (plans depend on
    it; lists are almost always one group) and, for HiLog literals, by the
    value of the predicate-name variables -- so a predicate-variable
    literal costs one source resolution per distinct name, not one per
    binding.
    """
    out: List[Bindings] = []
    groups: Dict[frozenset, List[Bindings]] = {}
    for b in bindings_list:
        groups.setdefault(frozenset(b), []).append(b)
    for sig, group in groups.items():
        plan = planner.plan_for(index, sig)
        if plan.pred_vars:
            by_name: Dict[tuple, List[Bindings]] = {}
            for b in group:
                by_name.setdefault(
                    tuple(b.get(v) for v in plan.pred_vars), []
                ).append(b)
            for values, sub in by_name.items():
                if any(v is None for v in values):
                    raise GlueRuntimeError(
                        f"predicate variable in {subgoal.pred} not bound at "
                        "evaluation time"
                    )
                name = substitute(subgoal.pred, dict(zip(plan.pred_vars, values)))
                if not is_ground(name):
                    raise GlueRuntimeError(
                        f"predicate variable in {subgoal.pred} not bound at "
                        "evaluation time"
                    )
                source = _as_source(rows_fn(name, plan.arity))
                before = len(out)
                strategy = runner(sub, source, plan, out)
                if tracer is not None and tracer.enabled:
                    # Unified join-event schema, shared with the Glue VM's
                    # scan steps (see repro.vm.plan): strategy, key
                    # columns, est_rows, actual_rows.
                    added = len(out) - before
                    tracer.event(
                        "join",
                        f"{name}/{plan.arity}",
                        rows=added,
                        strategy=strategy,
                        bindings=len(sub),
                        source=len(source),
                        key=list(plan.probe_cols),
                        est_rows=est_rows,
                        actual_rows=added,
                    )
        else:
            source = _as_source(rows_fn(subgoal.pred, plan.arity))
            before = len(out)
            strategy = None
            if parallel is not None:
                strategy = _parallel_group(
                    parallel, group, source, plan, runner, out, tracer,
                    f"{subgoal.pred}/{plan.arity}",
                )
            if strategy is None:
                strategy = runner(group, source, plan, out)
            if tracer is not None and tracer.enabled:
                added = len(out) - before
                tracer.event(
                    "join",
                    f"{subgoal.pred}/{plan.arity}",
                    rows=added,
                    strategy=strategy,
                    bindings=len(group),
                    source=len(source),
                    key=list(plan.probe_cols),
                    est_rows=est_rows,
                    actual_rows=added,
                )
    return out


# ---------------------------------------------------------------------- #
# the nested-loop baseline (pre-hash-join semantics, for differentials)
# ---------------------------------------------------------------------- #


def _join_literal(
    bindings_list: List[Bindings],
    subgoal: PredSubgoal,
    rows_fn: RowsFn,
) -> List[Bindings]:
    out: List[Bindings] = []
    arity = len(subgoal.args)
    for b in bindings_list:
        name = substitute(subgoal.pred, b)
        if not is_ground(name):
            raise GlueRuntimeError(
                f"predicate variable in {subgoal.pred} not bound at evaluation time"
            )
        patterns = tuple(substitute(arg, b) for arg in subgoal.args)
        for row in _as_source(rows_fn(name, arity)).scan():
            extended = match_tuple(patterns, row, b)
            if extended is not None:
                out.append(extended)
    return out


def _filter_negation(
    bindings_list: List[Bindings], subgoal: PredSubgoal, rows_fn: RowsFn
) -> List[Bindings]:
    out: List[Bindings] = []
    arity = len(subgoal.args)
    for b in bindings_list:
        name = substitute(subgoal.pred, b)
        patterns = tuple(substitute(arg, b) for arg in subgoal.args)
        matched = False
        for row in _as_source(rows_fn(name, arity)).scan():
            if match_tuple(patterns, row, b) is not None:
                matched = True
                break
        if not matched:
            out.append(b)
    return out


# ---------------------------------------------------------------------- #
# comparisons, aggregation, the body walk
# ---------------------------------------------------------------------- #


def _apply_compare(
    bindings_list: List[Bindings],
    subgoal: CompareSubgoal,
    group_vars: List[str],
    var_order: Tuple[str, ...] = (),
) -> List[Bindings]:
    left, right, op = subgoal.left, subgoal.right, subgoal.op
    left_agg = expr_has_agg(left)
    right_agg = expr_has_agg(right)
    if left_agg or right_agg:
        if left_agg and right_agg:
            raise GlueRuntimeError("aggregates on both sides of a comparison")
        if left_agg:
            left, right = right, left
            op = {"=": "=", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}[op]
        if not isinstance(right, AggCall):
            raise GlueRuntimeError("an aggregate must be the whole comparison side")
        return _apply_aggregate_compare(
            bindings_list, left, op, right, group_vars, var_order
        )
    out: List[Bindings] = []
    binds_left = op == "=" and isinstance(left, Var) and not left.is_anonymous
    binds_right = op == "=" and isinstance(right, Var) and not right.is_anonymous
    for b in bindings_list:
        if binds_left and left.name not in b:
            value = eval_expr_bindings(right, b)
            extended = dict(b)
            extended[left.name] = value
            out.append(extended)
            continue
        if binds_right and right.name not in b:
            value = eval_expr_bindings(left, b)
            extended = dict(b)
            extended[right.name] = value
            out.append(extended)
            continue
        if compare_terms(op, eval_expr_bindings(left, b), eval_expr_bindings(right, b)):
            out.append(b)
    return out


def _dedup_bindings(
    bindings_list: List[Bindings], var_order: Tuple[str, ...] = ()
) -> List[Bindings]:
    """Deduplicate bindings using a precomputed variable order.

    The rule's :class:`~repro.nail.rules.JoinPlanner` supplies the order
    (first appearance in the body), so each binding's key is a flat O(k)
    projection -- no per-binding sort.  Variables outside the precomputed
    order (seed-only bindings) extend it by first appearance.
    """
    order = list(var_order)
    known = set(order)
    for b in bindings_list:
        for name in b:
            if name not in known:
                known.add(name)
                order.append(name)
    seen = set()
    out = []
    for b in bindings_list:
        key = tuple(b.get(name) for name in order)
        if key not in seen:
            seen.add(key)
            out.append(b)
    return out


def _project_bindings(
    bindings_list: List[Bindings], live: Tuple[str, ...]
) -> List[Bindings]:
    """Projection push-down: drop dead variables and merge the duplicates.

    Sound under set semantics (the final head set is unchanged); callers
    never apply it in aggregate rules, where binding multiplicity matters.
    """
    seen = set()
    out: List[Bindings] = []
    for b in bindings_list:
        key = tuple(b.get(name) for name in live)
        if key in seen:
            continue
        seen.add(key)
        out.append({name: b[name] for name in live if name in b})
    return out


def _apply_aggregate_compare(
    bindings_list: List[Bindings],
    left,
    op: str,
    agg: AggCall,
    group_vars: List[str],
    var_order: Tuple[str, ...] = (),
) -> List[Bindings]:
    if not bindings_list:
        return []
    bindings_list = _dedup_bindings(bindings_list, var_order)
    groups: Dict[Tuple, List[Bindings]] = {}
    for b in bindings_list:
        key = tuple(b.get(v) for v in group_vars)
        groups.setdefault(key, []).append(b)
    agg_of = {
        key: apply_aggregate(agg.op, [eval_expr_bindings(agg.arg, b) for b in members])
        for key, members in groups.items()
    }
    out: List[Bindings] = []
    binds = op == "=" and isinstance(left, Var) and not left.is_anonymous
    for b in bindings_list:
        value = agg_of[tuple(b.get(v) for v in group_vars)]
        if binds and left.name not in b:
            extended = dict(b)
            extended[left.name] = value
            out.append(extended)
        elif compare_terms(op, eval_expr_bindings(left, b), value):
            out.append(b)
    return out


# ---------------------------------------------------------------------- #
# columnar batch execution (batch_mode="columnar", see repro.col)
# ---------------------------------------------------------------------- #


def _find_columnar_context(decl: RuleDecl, rows_fn: RowsFn):
    """The shared per-database columnar context for this rule body.

    Ids from different relations meet in join keys, so every kernel in one
    body must encode through the same atom table; the first ground literal
    whose source is a database-owned Relation supplies it.  Bodies with no
    such literal (all deltas, iterables, or HiLog names) stay on the row
    engine.
    """
    for subgoal in decl.body:
        if not isinstance(subgoal, PredSubgoal):
            continue
        if not is_ground(subgoal.pred):
            continue
        obj = rows_fn(subgoal.pred, len(subgoal.args))
        ctx = getattr(obj, "columnar", None)
        if ctx is not None:
            return ctx
    return None


def _empty_batch(batch: Batch, plan: LiteralPlan) -> Batch:
    names = batch.vars + tuple(name for _col, name in plan.extract)
    return Batch(names, [[] for _ in names], 0, batch.atoms)


def _parallel_probe_kernel(
    parallel, batch: Batch, plan, table, counters, atoms, tracer, label, source_size
) -> Optional[Batch]:
    """Batch-aware partition split: the probe kernel over column slices.

    The coordinator builds (or reuses) the kernel table, splits the batch
    into contiguous column slices, and runs the same ``run_probe`` code per
    slice on the worker pool -- so a parallel columnar join performs
    exactly the probes a serial one performs and the folded cost counters
    come out identical.  Returns None (serial fallback) below the
    partition floor.
    """
    n = batch.length
    parts = parallel.partition_count(n)
    if parts < 2:
        return None
    bounds = chunk_bounds(n, parts)
    if len(bounds) < 2:
        return None
    # Pre-intern constant key components on the coordinator: worker-side
    # kernel runs then only *read* the shared atom table.
    for _col, kind, value in plan.key_cols:
        if kind == "const":
            atoms.intern(value)
    slices = batch.slices(bounds)
    if tracer is not None and tracer.enabled:
        tracer.event(
            "exchange",
            label,
            strategy="broadcast",
            source=source_size,
            bindings=n,
            partitions=len(slices),
        )
    outs = parallel.run_region(
        [
            (lambda s=s: run_probe(s, plan, table, counters, atoms))
            for s in slices
        ],
        label=label,
        tracer=tracer,
        strategy="chunked",
        partition_rows=[len(s) for s in slices],
    )
    out = outs[0]
    for chunk in outs[1:]:
        out = out.concat(chunk)
    return out


def _columnar_literal(
    batch: Batch,
    index: int,
    subgoal: PredSubgoal,
    fn: RowsFn,
    planner: JoinPlanner,
    ctx,
    tracer,
    est_rows: Optional[float],
    parallel,
) -> Optional[Batch]:
    """Evaluate one literal against a batch with a specialized kernel.

    Returns the output batch, or None when this literal falls back to the
    row engine (HiLog predicate variables, compound-term residue, delta /
    iterable probes, anti-probes) -- the caller then decodes the batch and
    continues on the row path.  Kernels charge exactly the counters the
    row strategies charge and emit the same unified ``join`` trace events,
    plus one ``batch_kernel`` event carrying kernel-cache and batch-size
    detail.
    """
    plan = planner.plan_for(index, frozenset(batch.vars))
    if plan.pred_vars or plan.complex_cols:
        return None
    source = _as_source(fn(subgoal.pred, plan.arity))
    atoms = ctx.atoms
    cached: Optional[bool] = None
    parallel_label = None
    if subgoal.negated:
        if isinstance(source, _EmptySource):
            # Nothing to match: every binding survives, nothing is charged
            # (the row strategies agree on both points for absent sources).
            out = batch
            strategy = (
                ("member" if plan.covers_all_columns else "anti-probe")
                if plan.has_var_keys
                else "anti-static"
            )
        elif plan.has_var_keys:
            if not plan.covers_all_columns:
                return None  # anti-probe keeps the row engine's residual checks
            if not isinstance(source, _RelationSource) or source.relation.columnar is not ctx:
                return None
            rowset, cached = ctx.rowset(source.relation)
            out = run_member(batch, plan, rowset, source.relation.counters, atoms)
            strategy = "member"
        else:
            # Group-level test: one probe/scan decides for the whole batch.
            if plan.probe_cols:
                candidates = source.probe(
                    plan.probe_cols, _probe_key(plan.key_cols, {})
                )
            else:
                candidates = source.scan()
            if any(_row_survives(row, plan) for row in candidates):
                out = Batch(batch.vars, [[] for _ in batch.vars], 0, batch.atoms)
            else:
                out = batch
            strategy = "anti-static"
    elif plan.has_var_keys:
        if isinstance(source, _EmptySource):
            out = _empty_batch(batch, plan)
        else:
            if not isinstance(source, _RelationSource) or source.relation.columnar is not ctx:
                return None  # delta/iterable probes keep the row engine
            relation = source.relation
            table, cached = ctx.probe_table(relation, plan)
            out = None
            if (
                parallel is not None
                and parallel.active
                and batch.length >= 2 * parallel.min_partition_rows
            ):
                parallel_label = f"{subgoal.pred}/{plan.arity}"
                out = _parallel_probe_kernel(
                    parallel, batch, plan, table, relation.counters, atoms,
                    tracer, parallel_label, len(source),
                )
                if out is None:
                    parallel_label = None
            if out is None:
                out = run_probe(batch, plan, table, relation.counters, atoms)
        strategy = "probe"
    else:
        # Broadcast: candidates come through the source's own probe/scan
        # (one call per batch), so delta scans charge ``tuples_scanned``
        # exactly as the row engine's group-level scan does.
        out = run_broadcast(batch, plan, source, atoms, ctx)
        strategy = "broadcast"
    if tracer is not None and tracer.enabled:
        label = f"{subgoal.pred}/{plan.arity}"
        added = out.length
        tracer.event(
            "join",
            label,
            rows=added,
            strategy=strategy + "+chunked" if parallel_label else strategy,
            bindings=batch.length,
            source=len(source),
            key=list(plan.probe_cols),
            est_rows=est_rows,
            actual_rows=added,
        )
        tracer.event(
            "batch_kernel",
            label,
            rows=added,
            kernel=strategy,
            batch=batch.length,
            cache=(None if cached is None else ("hit" if cached else "miss")),
        )
    return out


def _cost_plan(
    rule: RuleInfo,
    decl: RuleDecl,
    rows_fn: RowsFn,
    delta_index: Optional[int],
    seeds: Optional[List[Bindings]],
) -> Plan:
    """Run the shared planner over a rule body at evaluation time.

    Statistics come straight from ``rows_fn``: a resolved Relation is
    snapshotted once under its lock, a plain iterable by size, and an
    absent relation counts as genuinely empty *right now* (scheduling it
    first annihilates the body immediately).  The seminaive delta literal
    is pinned first -- it is (almost always) the smallest source and must
    drive the join -- and its estimate conservatively uses the full
    relation's statistics.
    """

    def stats_source(pred, arity):
        obj = rows_fn(pred, arity)
        if obj is None:
            return 0
        return obj

    bound: set = set()
    if seeds:
        bound = set(seeds[0])
        for b in seeds[1:]:
            bound &= set(b)
    plan = _optimize(
        decl.body,
        stats=stats_source,
        bound=bound,
        input_size=len(seeds) if seeds is not None else 1,
        pinned_first=delta_index,
        required_vars=rule.head_vars,
        allow_projection=True,
    )
    return plan


def eval_rule_body_batch(
    rule: Union[RuleDecl, RuleInfo],
    rows_fn: RowsFn,
    delta_index: Optional[int] = None,
    delta_rows_fn: Optional[RowsFn] = None,
    seeds: Optional[List[Bindings]] = None,
    tracer=None,
    join_mode: str = "hash",
    order_mode: str = "cost",
    parallel=None,
    batch_mode: str = "columnar",
) -> Union[List[Bindings], Batch]:
    """Evaluate a rule body; the result may still be a columnar batch.

    The engine-facing variant of :func:`eval_rule_body`: under
    ``batch_mode="columnar"`` the returned bindings may be a
    :class:`~repro.col.batch.Batch` (decode with ``to_dicts()``, or hand
    it straight to :func:`derive_heads`, which consumes batches without
    materializing binding dicts).  Everything else matches
    :func:`eval_rule_body`.
    """
    if isinstance(rule, RuleInfo):
        decl = rule.rule
        planner = rule.planner if rule.planner is not None else JoinPlanner(decl)
    else:
        decl = rule
        planner = JoinPlanner(decl)
    if join_mode == "nested":
        planner = None
    elif join_mode != "hash":
        raise ValueError(f"unknown join mode {join_mode!r}")
    if order_mode not in ("cost", "program"):
        raise ValueError(f"unknown order mode {order_mode!r}")
    if batch_mode not in ("columnar", "row"):
        raise ValueError(f"unknown batch mode {batch_mode!r}")
    if parallel is not None and isinstance(rule, RuleInfo) and rule.has_aggregate:
        parallel = None  # serial fallback: multiplicity-sensitive bodies
    var_order = planner.var_order if planner is not None else ()

    # Columnar batches apply to planned (hash) bodies without aggregates;
    # the kernels themselves fall back per literal for HiLog names,
    # compound residue, delta probes and anti-probes -- see the fallback
    # matrix in docs/PERFORMANCE.md.
    col_ctx = None
    if (
        batch_mode == "columnar"
        and planner is not None
        and not (isinstance(rule, RuleInfo) and rule.has_aggregate)
    ):
        col_ctx = _find_columnar_context(decl, rows_fn)

    # Cost-based ordering applies to prepared, aggregate-free rules under
    # the hash engine; everything else (aggregates -- whose group_by scope
    # is positional -- HiLog deltas needing earlier binders, the nested
    # baseline) falls back to program order.  See the fallback matrix in
    # docs/PERFORMANCE.md.
    plan: Optional[Plan] = None
    if (
        order_mode == "cost"
        and planner is not None
        and isinstance(rule, RuleInfo)
        and not rule.has_aggregate
        and not any(isinstance(s, GroupBySubgoal) for s in decl.body)
        and (delta_index is None or is_ground(decl.body[delta_index].pred))
    ):
        plan = _cost_plan(rule, decl, rows_fn, delta_index, seeds)
        planner.last_plan = plan

    if plan is not None:
        order = list(plan.order)
        est_of = {step.index: step.est_rows for step in plan.steps}
        project_of = {step.index: step.project for step in plan.steps}
    else:
        est_of = {}
        project_of = {}
        order = list(range(len(decl.body)))
        if (
            delta_index is not None
            and delta_index != 0
            and isinstance(rule, RuleInfo)
            and not rule.has_aggregate
            and is_ground(decl.body[delta_index].pred)
        ):
            # Seminaive delta-first rotation: the delta is (almost always)
            # the smallest source, so it should drive the join rather than
            # be probed once per row of the full accumulated relations.
            # Moving a positive literal earlier only *adds* bindings at
            # every later subgoal, so negations and comparisons keep their
            # semantics; aggregate rules are excluded (group_by scope is
            # positional), as are HiLog deltas whose predicate variables
            # need earlier binders.
            order.remove(delta_index)
            order.insert(0, delta_index)

    bindings_list: Union[List[Bindings], Batch] = (
        seeds if seeds is not None else [{}]
    )
    if col_ctx is not None:
        encoded = encode_dicts(bindings_list, col_ctx.atoms)
        if encoded is not None:
            bindings_list = encoded
    group_vars: List[str] = []
    for index in order:
        subgoal = decl.body[index]
        if not bindings_list:
            return []
        if isinstance(bindings_list, Batch):
            if (
                isinstance(subgoal, PredSubgoal)
                and not subgoal.args
                and subgoal.pred in (_TRUE, _FALSE)
            ):
                holds = subgoal.pred == _TRUE
                if subgoal.negated:
                    holds = not holds
                if not holds:
                    return []
                continue
            stepped = None
            if isinstance(subgoal, PredSubgoal):
                fn = (
                    delta_rows_fn
                    if index == delta_index and not subgoal.negated
                    else rows_fn
                )
                stepped = _columnar_literal(
                    bindings_list, index, subgoal, fn, planner, col_ctx,
                    tracer, est_of.get(index), parallel,
                )
            if stepped is not None:
                bindings_list = stepped
                if not subgoal.negated:
                    live = project_of.get(index)
                    if live is not None and bindings_list.length:
                        bindings_list = project_batch(bindings_list, live)
                continue
            # Per-literal fallback: decode once and continue on the row
            # engine (comparisons, aggregates, residual literals).
            bindings_list = bindings_list.to_dicts(col_ctx.atoms)
            if not bindings_list:
                return []
        if isinstance(subgoal, PredSubgoal):
            if not subgoal.args and subgoal.pred in (_TRUE, _FALSE):
                holds = subgoal.pred == _TRUE
                if subgoal.negated:
                    holds = not holds
                if not holds:
                    return []
            elif subgoal.negated:
                if planner is not None:
                    bindings_list = _grouped_literal(
                        bindings_list, index, subgoal, rows_fn, planner, tracer,
                        _antijoin_group, est_of.get(index), parallel,
                    )
                else:
                    bindings_list = _filter_negation(bindings_list, subgoal, rows_fn)
            else:
                fn = delta_rows_fn if index == delta_index else rows_fn
                if planner is not None:
                    bindings_list = _grouped_literal(
                        bindings_list, index, subgoal, fn, planner, tracer,
                        _join_group, est_of.get(index), parallel,
                    )
                else:
                    bindings_list = _join_literal(bindings_list, subgoal, fn)
                live = project_of.get(index)
                if live is not None and bindings_list:
                    bindings_list = _project_bindings(bindings_list, live)
        elif isinstance(subgoal, CompareSubgoal):
            bindings_list = _apply_compare(bindings_list, subgoal, group_vars, var_order)
        elif isinstance(subgoal, GroupBySubgoal):
            for term in subgoal.terms:
                if not isinstance(term, Var):
                    raise GlueRuntimeError("group_by arguments must be variables")
                if term.name not in group_vars:
                    group_vars.append(term.name)
        else:
            raise GlueRuntimeError(
                f"NAIL! rule bodies may not contain {type(subgoal).__name__}"
            )
    return bindings_list


def eval_rule_body(
    rule: Union[RuleDecl, RuleInfo],
    rows_fn: RowsFn,
    delta_index: Optional[int] = None,
    delta_rows_fn: Optional[RowsFn] = None,
    seeds: Optional[List[Bindings]] = None,
    tracer=None,
    join_mode: str = "hash",
    order_mode: str = "cost",
    parallel=None,
    batch_mode: str = "columnar",
) -> List[Bindings]:
    """Evaluate a rule body left to right; returns the final binding set.

    ``rule`` may be a bare :class:`RuleDecl` or a prepared
    :class:`~repro.nail.rules.RuleInfo` (whose cached join planner is then
    reused across calls).  ``delta_index`` (an index into the body)
    redirects that single positive literal to ``delta_rows_fn`` -- the
    seminaive trick.  ``join_mode`` selects ``"hash"`` (the planned
    hash-join engine) or ``"nested"`` (the pre-hash-join nested-loop
    baseline, kept for differential testing and cost comparisons).
    ``order_mode`` selects ``"cost"`` (the shared ``repro.opt`` planner
    chooses the join order per call, with projection push-down) or
    ``"program"`` (the written order plus the legacy delta-first rotation
    -- the differential baseline).  ``batch_mode`` selects ``"columnar"``
    (plan-specialized batch kernels over interned id arrays, see
    ``repro.col``) or ``"row"`` (the dict-per-binding engine, kept as the
    differential baseline); both charge identical cost counters.
    ``tracer``, when given and enabled, receives one ``join`` event per
    (literal, binding group) with the strategy the engine chose and
    estimated vs. actual rows.  ``parallel`` (a
    :class:`repro.par.ParallelContext`, or None) splits large binding
    groups -- and columnar batches -- across the worker pool; aggregate
    rules, where binding multiplicity and order carry meaning, always
    evaluate serially.
    """
    out = eval_rule_body_batch(
        rule,
        rows_fn,
        delta_index=delta_index,
        delta_rows_fn=delta_rows_fn,
        seeds=seeds,
        tracer=tracer,
        join_mode=join_mode,
        order_mode=order_mode,
        parallel=parallel,
        batch_mode=batch_mode,
    )
    if isinstance(out, Batch):
        return out.to_dicts()
    return out


def _derive_heads_batch(
    decl: RuleDecl, batch: Batch
) -> Optional[List[Tuple[Term, Row]]]:
    """Columnar head derivation: decode each head column once.

    Applies when the head predicate is ground and every head argument is
    either a ground term or a plain variable bound by the batch; compound
    head arguments fall back to per-binding instantiation (None).
    """
    if not is_ground(decl.head_pred):
        return None
    atoms = batch.atoms
    if atoms is None:
        return None
    columns = []
    for arg in decl.head_args:
        if isinstance(arg, Var):
            if arg.name not in batch.vars:
                return None
            columns.append(atoms.decode(batch.col(arg.name)))
        elif isinstance(arg, Term) and is_ground(arg):
            columns.append([arg] * batch.length)
        else:
            return None
    name = decl.head_pred
    if not columns:
        return [(name, ())] * batch.length
    return [(name, row) for row in zip(*columns)]


def derive_heads(
    rule: Union[RuleDecl, RuleInfo], bindings_list: Union[List[Bindings], Batch]
) -> List[Tuple[Term, Row]]:
    """Instantiate the rule head for each binding: (relation name, row)."""
    decl = rule.rule if isinstance(rule, RuleInfo) else rule
    if isinstance(bindings_list, Batch):
        derived = _derive_heads_batch(decl, bindings_list)
        if derived is not None:
            return derived
        bindings_list = bindings_list.to_dicts()
    out: List[Tuple[Term, Row]] = []
    for b in bindings_list:
        name = instantiate(decl.head_pred, b)
        row = tuple(instantiate(arg, b) for arg in decl.head_args)
        out.append((name, row))
    return out
