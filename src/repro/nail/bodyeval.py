"""Bindings-based evaluation of NAIL! rule bodies.

The native engine evaluates rule bodies over binding dictionaries rather
than compiled positional plans: seminaive evaluation substitutes a *delta*
relation for one literal occurrence per pass, which is simplest with an
interpretive evaluator.  (The compiled path is the NAIL!-to-Glue pipeline,
which reuses the Glue VM.)
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.analysis.bindings import expr_has_agg
from repro.errors import GlueRuntimeError
from repro.glue.aggregates import apply_aggregate
from repro.glue.builtins import compare_terms, eval_function, term_arith
from repro.lang.ast import (
    AggCall,
    BinOp,
    CompareSubgoal,
    FunCall,
    GroupBySubgoal,
    PredSubgoal,
    RuleDecl,
    UnaryOp,
)
from repro.terms.matching import instantiate, match_tuple, substitute
from repro.terms.term import Atom, Num, Term, Var, is_ground

Bindings = Dict[str, Term]
Row = Tuple[Term, ...]

_TRUE = Atom("true")
_FALSE = Atom("false")

# rows(name, arity) -> iterable of ground rows for that predicate instance.
RowsFn = Callable[[Term, int], Iterable[Row]]


def eval_expr_bindings(expr, bindings: Bindings) -> Term:
    """Evaluate an aggregate-free expression under a bindings dict."""
    if isinstance(expr, Num):
        return expr
    if isinstance(expr, Var):
        value = bindings.get(expr.name)
        if value is None:
            raise GlueRuntimeError(f"unbound variable {expr.name} in expression")
        return value
    if isinstance(expr, Term):
        return instantiate(expr, bindings)
    if isinstance(expr, BinOp):
        return term_arith(
            expr.op,
            eval_expr_bindings(expr.left, bindings),
            eval_expr_bindings(expr.right, bindings),
        )
    if isinstance(expr, UnaryOp):
        return term_arith("-", Num(0), eval_expr_bindings(expr.operand, bindings))
    if isinstance(expr, FunCall):
        args = tuple(eval_expr_bindings(a, bindings) for a in expr.args)
        return eval_function(expr.name, args)
    raise GlueRuntimeError(f"cannot evaluate expression {expr!r}")


def _join_literal(
    bindings_list: List[Bindings],
    subgoal: PredSubgoal,
    rows_fn: RowsFn,
) -> List[Bindings]:
    out: List[Bindings] = []
    arity = len(subgoal.args)
    for b in bindings_list:
        name = substitute(subgoal.pred, b)
        if not is_ground(name):
            raise GlueRuntimeError(
                f"predicate variable in {subgoal.pred} not bound at evaluation time"
            )
        patterns = tuple(substitute(arg, b) for arg in subgoal.args)
        for row in rows_fn(name, arity):
            extended = match_tuple(patterns, row, b)
            if extended is not None:
                out.append(extended)
    return out


def _filter_negation(
    bindings_list: List[Bindings], subgoal: PredSubgoal, rows_fn: RowsFn
) -> List[Bindings]:
    out: List[Bindings] = []
    arity = len(subgoal.args)
    for b in bindings_list:
        name = substitute(subgoal.pred, b)
        patterns = tuple(substitute(arg, b) for arg in subgoal.args)
        matched = False
        for row in rows_fn(name, arity):
            if match_tuple(patterns, row, b) is not None:
                matched = True
                break
        if not matched:
            out.append(b)
    return out


def _apply_compare(
    bindings_list: List[Bindings],
    subgoal: CompareSubgoal,
    group_vars: List[str],
) -> List[Bindings]:
    left, right, op = subgoal.left, subgoal.right, subgoal.op
    left_agg = expr_has_agg(left)
    right_agg = expr_has_agg(right)
    if left_agg or right_agg:
        if left_agg and right_agg:
            raise GlueRuntimeError("aggregates on both sides of a comparison")
        if left_agg:
            left, right = right, left
            op = {"=": "=", "!=": "!=", "<": ">", ">": "<", "<=": ">=", ">=": "<="}[op]
        if not isinstance(right, AggCall):
            raise GlueRuntimeError("an aggregate must be the whole comparison side")
        return _apply_aggregate_compare(bindings_list, left, op, right, group_vars)
    out: List[Bindings] = []
    binds_left = op == "=" and isinstance(left, Var) and not left.is_anonymous
    binds_right = op == "=" and isinstance(right, Var) and not right.is_anonymous
    for b in bindings_list:
        if binds_left and left.name not in b:
            value = eval_expr_bindings(right, b)
            extended = dict(b)
            extended[left.name] = value
            out.append(extended)
            continue
        if binds_right and right.name not in b:
            value = eval_expr_bindings(left, b)
            extended = dict(b)
            extended[right.name] = value
            out.append(extended)
            continue
        if compare_terms(op, eval_expr_bindings(left, b), eval_expr_bindings(right, b)):
            out.append(b)
    return out


def _dedup_bindings(bindings_list: List[Bindings]) -> List[Bindings]:
    seen = set()
    out = []
    for b in bindings_list:
        key = tuple(sorted(b.items(), key=lambda kv: kv[0]))
        if key not in seen:
            seen.add(key)
            out.append(b)
    return out


def _apply_aggregate_compare(
    bindings_list: List[Bindings],
    left,
    op: str,
    agg: AggCall,
    group_vars: List[str],
) -> List[Bindings]:
    if not bindings_list:
        return []
    bindings_list = _dedup_bindings(bindings_list)
    groups: Dict[Tuple, List[Bindings]] = {}
    for b in bindings_list:
        key = tuple(b.get(v) for v in group_vars)
        groups.setdefault(key, []).append(b)
    agg_of = {
        key: apply_aggregate(agg.op, [eval_expr_bindings(agg.arg, b) for b in members])
        for key, members in groups.items()
    }
    out: List[Bindings] = []
    binds = op == "=" and isinstance(left, Var) and not left.is_anonymous
    for b in bindings_list:
        value = agg_of[tuple(b.get(v) for v in group_vars)]
        if binds and left.name not in b:
            extended = dict(b)
            extended[left.name] = value
            out.append(extended)
        elif compare_terms(op, eval_expr_bindings(left, b), value):
            out.append(b)
    return out


def eval_rule_body(
    rule: RuleDecl,
    rows_fn: RowsFn,
    delta_index: Optional[int] = None,
    delta_rows_fn: Optional[RowsFn] = None,
    seeds: Optional[List[Bindings]] = None,
) -> List[Bindings]:
    """Evaluate a rule body left to right; returns the final binding set.

    ``delta_index`` (an index into ``rule.body``) redirects that single
    positive literal to ``delta_rows_fn`` -- the seminaive trick.
    """
    bindings_list: List[Bindings] = seeds if seeds is not None else [{}]
    group_vars: List[str] = []
    for index, subgoal in enumerate(rule.body):
        if not bindings_list:
            return []
        if isinstance(subgoal, PredSubgoal):
            if not subgoal.args and subgoal.pred in (_TRUE, _FALSE):
                holds = subgoal.pred == _TRUE
                if subgoal.negated:
                    holds = not holds
                if not holds:
                    return []
            elif subgoal.negated:
                bindings_list = _filter_negation(bindings_list, subgoal, rows_fn)
            else:
                fn = delta_rows_fn if index == delta_index else rows_fn
                bindings_list = _join_literal(bindings_list, subgoal, fn)
        elif isinstance(subgoal, CompareSubgoal):
            bindings_list = _apply_compare(bindings_list, subgoal, group_vars)
        elif isinstance(subgoal, GroupBySubgoal):
            for term in subgoal.terms:
                if not isinstance(term, Var):
                    raise GlueRuntimeError("group_by arguments must be variables")
                if term.name not in group_vars:
                    group_vars.append(term.name)
        else:
            raise GlueRuntimeError(
                f"NAIL! rule bodies may not contain {type(subgoal).__name__}"
            )
    return bindings_list


def derive_heads(rule: RuleDecl, bindings_list: List[Bindings]) -> List[Tuple[Term, Row]]:
    """Instantiate the rule head for each binding: (relation name, row)."""
    out: List[Tuple[Term, Row]] = []
    for b in bindings_list:
        name = instantiate(rule.head_pred, b)
        row = tuple(instantiate(arg, b) for arg in rule.head_args)
        out.append((name, row))
    return out
