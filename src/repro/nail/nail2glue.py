"""The NAIL!-to-Glue compiler.

"NAIL! code is compiled into Glue code, simplifying the system design"
(paper abstract); "NAIL! code is compiled into Glue procedures; the Glue
optimizer runs over all the code" (Section 11).  This module turns a
stratified NAIL! rule set into a Glue module: one procedure per stratum,
each running the seminaive fixpoint with Glue's own repeat/until,
``unchanged`` termination tests, delta relations held in procedure-local
relations, and negation-as-difference -- plus a driver procedure that runs
the strata bottom-up.

The generated program is ordinary Glue source: it parses, compiles and
optimizes through the standard pipeline, which is exactly the paper's
single-optimizer story.  Output predicates materialize as EDB-class
relations in whatever database the generated code runs against.

Limitations (documented, tested): compound-named (HiLog-family) heads and
predicate-variable body literals fall back to the native engine, since the
generated module needs static relation names for its deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.depgraph import build_dependency_graph
from repro.analysis.scope import Skeleton, pred_skeleton
from repro.analysis.stratify import stratify
from repro.errors import UnsafeRuleError
from repro.lang.ast import (
    AssignStmt,
    CondDisjunction,
    EdbDecl,
    ModuleDecl,
    PredSig,
    PredSubgoal,
    ProcDecl,
    Program,
    RepeatStmt,
    RuleDecl,
    UnchangedCond,
)
from repro.lang.pretty import pretty_program
from repro.nail.rules import check_rule_safety
from repro.terms.term import Atom, Term, Var, variables


from repro.errors import GlueNailError as _GlueNailError


class Nail2GlueError(_GlueNailError):
    """The rule set is outside the compilable fragment."""


@dataclass(frozen=True)
class Nail2GlueResult:
    """The generated Glue program plus everything needed to run it."""

    program: Program
    source: str
    module_name: str
    driver_proc: str
    stratum_procs: Tuple[str, ...]
    output_preds: Tuple[Tuple[str, int], ...]


def _head_name(skeleton: Skeleton) -> str:
    name, chain, _arity = skeleton
    if chain or name is None:
        raise Nail2GlueError(
            f"cannot compile compound-named head {skeleton} to Glue"
        )
    return name


def _fresh_args(arity: int) -> Tuple[Var, ...]:
    return tuple(Var(f"V{i}") for i in range(arity))


def _delta_name(name: str, arity: int) -> str:
    return f"delta__{name}__{arity}"


def _new_name(name: str, arity: int) -> str:
    return f"new__{name}__{arity}"


def _check_fragment(rules: Sequence[RuleDecl]) -> None:
    for rule in rules:
        try:
            check_rule_safety(rule)
        except UnsafeRuleError as exc:
            raise Nail2GlueError(f"rule is unsafe for bottom-up Glue code: {exc}") from exc
        for subgoal in rule.body:
            if isinstance(subgoal, PredSubgoal):
                for var in variables(subgoal.pred):
                    raise Nail2GlueError(
                        "predicate-variable literals fall back to the native engine"
                    )


def compile_rules_to_glue(
    rules: Sequence[RuleDecl], module_name: str = "nail_generated"
) -> Nail2GlueResult:
    """Compile a stratified NAIL! rule set into an equivalent Glue module."""
    rules = list(rules)
    _check_fragment(rules)
    dep = build_dependency_graph(rules)
    strata = stratify(dep)

    idb: Set[Skeleton] = dep.idb_skeletons()
    output_preds: List[Tuple[str, int]] = sorted(
        {(_head_name(s), s[2]) for s in idb}
    )

    procs: List[ProcDecl] = []
    stratum_proc_names: List[str] = []
    for stratum in strata:
        proc = _compile_stratum(stratum.index, stratum.skeletons, dep.rules_by_head)
        procs.append(proc)
        stratum_proc_names.append(proc.name)

    driver = _compile_driver(stratum_proc_names)
    procs.append(driver)

    items: List[object] = []
    # Export the driver so callers can invoke it by name.
    items.append(
        _export([PredSig(name=driver.name, bound=(), free=())])
    )
    for name, arity in output_preds:
        items.append(EdbDecl(name=name, attrs=tuple(f"A{i}" for i in range(arity))))
    items.extend(procs)

    module = ModuleDecl(name=module_name, items=tuple(items))
    program = Program(modules=(module,), items=())
    return Nail2GlueResult(
        program=program,
        source=pretty_program(program),
        module_name=module_name,
        driver_proc=driver.name,
        stratum_procs=tuple(stratum_proc_names),
        output_preds=tuple(output_preds),
    )


def _export(sigs: Sequence[PredSig]):
    from repro.lang.ast import ExportDecl

    return ExportDecl(sigs=tuple(sigs))


def _compile_stratum(
    index: int,
    skeletons: frozenset,
    rules_by_head: Dict[Skeleton, List[RuleDecl]],
) -> ProcDecl:
    preds: List[Tuple[str, int]] = sorted({(_head_name(s), s[2]) for s in skeletons})
    stratum_rules: List[RuleDecl] = []
    for skeleton in skeletons:
        stratum_rules.extend(rules_by_head.get(skeleton, ()))
    stratum_rules.sort(key=lambda r: (str(r.head_pred), r.line))

    same_stratum_names = {(name, arity) for name, arity in preds}

    def recursive_positions(rule: RuleDecl) -> List[int]:
        positions = []
        for i, subgoal in enumerate(rule.body):
            if isinstance(subgoal, PredSubgoal) and not subgoal.negated:
                skel = pred_skeleton(subgoal.pred, len(subgoal.args))
                if skel[0] is not None and (skel[0], skel[2]) in same_stratum_names:
                    positions.append(i)
        return positions

    base_rules = [r for r in stratum_rules if not recursive_positions(r)]
    rec_rules = [(r, recursive_positions(r)) for r in stratum_rules if recursive_positions(r)]

    locals_: List[EdbDecl] = []
    for name, arity in preds:
        attrs = tuple(f"A{i}" for i in range(arity))
        locals_.append(EdbDecl(name=_delta_name(name, arity), attrs=attrs))
        locals_.append(EdbDecl(name=_new_name(name, arity), attrs=attrs))

    body: List[object] = []
    # Base rules populate the output relations directly.
    for rule in base_rules:
        body.append(
            AssignStmt(
                head_pred=rule.head_pred,
                head_args=rule.head_args,
                op="+=",
                body=rule.body,
                line=rule.line,
            )
        )

    if rec_rules:
        # Seed the deltas with everything derived so far.
        for name, arity in preds:
            args = _fresh_args(arity)
            body.append(
                AssignStmt(
                    head_pred=Atom(_delta_name(name, arity)),
                    head_args=args,
                    op=":=",
                    body=(PredSubgoal(pred=Atom(name), args=args),),
                )
            )
        loop_body: List[object] = []
        # Clear the per-round "new" relations (X -= X empties a relation
        # while keeping the head variables bound by the body).
        for name, arity in preds:
            args = _fresh_args(arity)
            new = Atom(_new_name(name, arity))
            loop_body.append(
                AssignStmt(
                    head_pred=new,
                    head_args=args,
                    op="-=",
                    body=(PredSubgoal(pred=new, args=args),),
                )
            )
        # One statement per (rule, recursive position): the seminaive join
        # with the delta, minus what is already known (negation = set diff).
        for rule, positions in rec_rules:
            head_skel = pred_skeleton(rule.head_pred, len(rule.head_args))
            head_name = _head_name(head_skel)
            for position in positions:
                new_body: List[object] = []
                for i, subgoal in enumerate(rule.body):
                    if i == position:
                        assert isinstance(subgoal, PredSubgoal)
                        skel = pred_skeleton(subgoal.pred, len(subgoal.args))
                        new_body.append(
                            PredSubgoal(
                                pred=Atom(_delta_name(skel[0], skel[2])),
                                args=subgoal.args,
                            )
                        )
                    else:
                        new_body.append(subgoal)
                new_body.append(
                    PredSubgoal(
                        pred=Atom(head_name), args=rule.head_args, negated=True
                    )
                )
                loop_body.append(
                    AssignStmt(
                        head_pred=Atom(_new_name(head_name, len(rule.head_args))),
                        head_args=rule.head_args,
                        op="+=",
                        body=tuple(new_body),
                        line=rule.line,
                    )
                )
        # Merge the new tuples and roll the deltas.
        for name, arity in preds:
            args = _fresh_args(arity)
            new = Atom(_new_name(name, arity))
            loop_body.append(
                AssignStmt(
                    head_pred=Atom(name),
                    head_args=args,
                    op="+=",
                    body=(PredSubgoal(pred=new, args=args),),
                )
            )
            loop_body.append(
                AssignStmt(
                    head_pred=Atom(_delta_name(name, arity)),
                    head_args=args,
                    op=":=",
                    body=(PredSubgoal(pred=new, args=args),),
                )
            )
        until = CondDisjunction(
            alternatives=(
                tuple(
                    UnchangedCond(pred=Atom(name), arity=arity) for name, arity in preds
                ),
            )
        )
        body.append(RepeatStmt(body=tuple(loop_body), until=until))

    # Signal success so the driver's conjunction keeps flowing.
    body.append(
        AssignStmt(
            head_pred=Atom("return"),
            head_args=(),
            op=":=",
            body=(PredSubgoal(pred=Atom("true"), args=()),),
            head_bound=0,
        )
    )
    return ProcDecl(
        name=f"nail_stratum_{index}",
        bound_params=(),
        free_params=(),
        locals=tuple(locals_),
        body=tuple(body),
    )


def _compile_driver(stratum_procs: Sequence[str]) -> ProcDecl:
    body: List[object] = []
    if stratum_procs:
        subgoals = tuple(PredSubgoal(pred=Atom(name), args=()) for name in stratum_procs)
        body.append(
            AssignStmt(
                head_pred=Atom("done__"),
                head_args=(),
                op=":=",
                body=subgoals,
            )
        )
    body.append(
        AssignStmt(
            head_pred=Atom("return"),
            head_args=(),
            op=":=",
            body=(PredSubgoal(pred=Atom("true"), args=()),),
            head_bound=0,
        )
    )
    return ProcDecl(
        name="nail_eval_all",
        bound_params=(),
        free_params=(),
        locals=(EdbDecl(name="done__", attrs=()),),
        body=tuple(body),
    )
