"""Plan-specialized batch kernels and their per-database cache.

The kernel generator specializes the generic join interpreter against the
plan shapes both engines already compute -- a NAIL!
:class:`~repro.opt.literal.LiteralPlan` or a Glue
:class:`~repro.vm.plan.StmtJoinShape`: key columns, constant positions,
extraction templates and eq-checks are baked in as tuple indexes, and the
per-tuple work becomes one dict lookup plus list appends over id arrays.

**Counter parity is the contract.**  Every kernel charges exactly the
:class:`~repro.storage.stats.CostCounters` increments the row engine
charges for the same logical work -- probes charge ``index_lookups`` per
input row and ``index_probe_tuples`` by *raw* (pre-eq-check) bucket size,
scans charge through the source's own ``scan()``, index builds go through
``Relation.build_index`` (cached, so the build is charged once either
way).  Kernel-cache hits and batch sizes are reported only through
``batch_kernel`` trace events, never through counters, so a columnar run
and a row run are differentially identical on all counter fields.
"""

from __future__ import annotations

from typing import Tuple

from repro.col.atoms import AtomTable
from repro.col.batch import Batch

# Bounds keeping the per-database caches from growing without limit on
# pathological plan churn; real programs have a few dozen shapes.
_MAX_TABLES = 1024
_MAX_GLUE_TABLES = 256


class ColumnarContext:
    """Shared per-database columnar state: the atom table + kernel caches.

    One context is shared by a database and every database evaluating
    against it (the NAIL! engine's IDB adopts its EDB's context), because
    ids from different relations meet in join keys.  Cached state is keyed
    by the relation's ``(uid, version)`` fingerprint -- ``uid`` is globally
    unique, so frame-local Glue relations cache safely too -- and a version
    bump invalidates by key miss (full re-encode, no changelog replay).
    """

    __slots__ = (
        "atoms", "_tables", "_rowsets", "_glue_tables", "_bcast",
        "hits", "misses",
    )

    def __init__(self):
        self.atoms = AtomTable()
        # (uid, probe_cols, extract_cols, eq_checks) -> (version, table)
        self._tables: dict = {}
        # uid -> (version, frozenset of id-rows)
        self._rowsets: dict = {}
        # (uid, probe_cols, extract_cols, eq_checks) -> (version, table)
        self._glue_tables: dict = {}
        # (uid, extract_cols) -> (version, interned broadcast columns)
        self._bcast: dict = {}
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        return {
            "atoms": len(self.atoms),
            "tables": len(self._tables) + len(self._glue_tables),
            "rowsets": len(self._rowsets),
            "cache_hits": self.hits,
            "cache_misses": self.misses,
        }

    # ------------------------------------------------------------------ #
    # NAIL! kernel state
    # ------------------------------------------------------------------ #

    def probe_table(self, relation, plan) -> Tuple[dict, bool]:
        """The probe-side hash state for one (relation, literal plan).

        Maps a probe key (scalar id for single-column keys, id tuple
        otherwise) to ``(raw_bucket_len, match_count, extract_columns)``
        with eq-checks pre-applied.  Built by iterating the relation's own
        persistent ``HashIndex`` buckets, so the index build is charged
        (once) exactly as a row-engine probe would charge it, and bucket
        insertion order -- hence output order -- is identical.
        """
        extract_cols = tuple(col for col, _name in plan.extract)
        key = (relation.uid, plan.probe_cols, extract_cols, plan.eq_checks)
        version = relation.fingerprint[1]
        entry = self._tables.get(key)
        if entry is not None and entry[0] == version:
            self.hits += 1
            return entry[1], True
        self.misses += 1
        index = relation.build_index(plan.probe_cols)
        atoms = self.atoms
        intern = atoms.intern
        intern_row = atoms.intern_row
        eq_checks = plan.eq_checks
        scalar = len(plan.probe_cols) == 1
        table: dict = {}
        for bucket_key, rows in index.buckets_view().items():
            raw = len(rows)
            new_cols: list = [[] for _ in extract_cols]
            matched = 0
            for row in rows:
                if eq_checks and any(row[c] != row[c0] for c, c0 in eq_checks):
                    continue
                for j, c in enumerate(extract_cols):
                    new_cols[j].append(intern(row[c]))
                matched += 1
            k = intern(bucket_key[0]) if scalar else intern_row(bucket_key)
            table[k] = (raw, matched, new_cols)
        if len(self._tables) > _MAX_TABLES:
            self._tables.clear()
        self._tables[key] = (version, table)
        return table, False

    def rowset(self, relation) -> Tuple[set, bool]:
        """The relation's rows as a set of id tuples (membership kernel).

        Building charges nothing, mirroring the row engine's ``contains``
        path (a plain set-membership test over the stored row dict).
        """
        version = relation.fingerprint[1]
        entry = self._rowsets.get(relation.uid)
        if entry is not None and entry[0] == version:
            self.hits += 1
            return entry[1], True
        self.misses += 1
        intern_row = self.atoms.intern_row
        rows = frozenset(intern_row(row) for row in relation.rows())
        if len(self._rowsets) > _MAX_TABLES:
            self._rowsets.clear()
        self._rowsets[relation.uid] = (version, rows)
        return rows, False

    def broadcast_columns(self, relation, extract_cols: Tuple[int, ...]):
        """Interned id-columns for a full-relation broadcast.

        Keyed by ``(uid, extract_cols)`` and version-checked like the
        probe tables, so a relation that seminaive rounds broadcast
        repeatedly without changing -- the accumulated IDB, a static EDB
        side -- is encoded once per version instead of once per round per
        rule.  Charges nothing itself: the caller charges the scan, which
        the row engine pays every round regardless (counter parity).
        """
        version = relation.fingerprint[1]
        key = (relation.uid, extract_cols)
        entry = self._bcast.get(key)
        if entry is not None and entry[0] == version:
            self.hits += 1
            return entry[1]
        self.misses += 1
        intern = self.atoms.intern
        rows = list(relation.rows())  # rows() is a one-pass iterator
        cols = tuple([intern(row[c]) for row in rows] for c in extract_cols)
        if len(self._bcast) > _MAX_TABLES:
            self._bcast.clear()
        self._bcast[key] = (version, cols)
        return cols

    # ------------------------------------------------------------------ #
    # Glue kernel state
    # ------------------------------------------------------------------ #

    def glue_probe_table(self, target, shape) -> Tuple[dict, bool]:
        """Suffix table for a Glue scan step: probe key -> suffix rows.

        Keys are Term tuples (scalar Terms for single-column keys) and the
        values are ``(raw_bucket_len, [suffix Term tuples])`` with the
        eq-checks and extraction template pre-applied, so the emit closure
        is one lookup and one list comprehension per supplementary row.
        Term-level (no interning): frame-local relations need no shared id
        space, and the emitted rows feed straight into Term-tuple storage.
        """
        extract = shape.extract_cols
        key = (target.uid, shape.probe_cols, extract, shape.eq_checks)
        version = target.fingerprint[1]
        entry = self._glue_tables.get(key)
        if entry is not None and entry[0] == version:
            self.hits += 1
            return entry[1], True
        self.misses += 1
        index = target.build_index(shape.probe_cols)
        eq_checks = shape.eq_checks
        scalar = len(shape.probe_cols) == 1
        table: dict = {}
        for bucket_key, rows in index.buckets_view().items():
            if eq_checks:
                suffixes = [
                    tuple(row[c] for c in extract)
                    for row in rows
                    if all(row[c] == row[c0] for c, c0 in eq_checks)
                ]
            else:
                suffixes = [tuple(row[c] for c in extract) for row in rows]
            table[bucket_key[0] if scalar else bucket_key] = (len(rows), suffixes)
        if len(self._glue_tables) > _MAX_GLUE_TABLES:
            self._glue_tables.clear()
        self._glue_tables[key] = (version, table)
        return table, False


# ---------------------------------------------------------------------- #
# NAIL! batch kernels
# ---------------------------------------------------------------------- #


def run_probe(batch: Batch, plan, table: dict, counters, atoms: AtomTable) -> Batch:
    """Vectorized hash probe + extraction over one batch.

    Row-engine parity: one ``index_lookups`` per input row (misses
    included), ``index_probe_tuples`` by raw bucket length, output rows in
    (input row, bucket insertion) order.
    """
    key_cols = plan.key_cols
    n = batch.length
    if len(key_cols) == 1:
        _col, kind, value = key_cols[0]
        keys = batch.col(value) if kind == "var" else [atoms.intern(value)] * n
    else:
        parts = [
            batch.col(value) if kind == "var" else [atoms.intern(value)] * n
            for _col, kind, value in key_cols
        ]
        keys = zip(*parts)
    get = table.get
    rep: list = []
    append = rep.append
    new_cols: list = [[] for _ in plan.extract]
    probed = 0
    i = 0
    for key in keys:
        entry = get(key)
        if entry is not None:
            raw, matched, entry_cols = entry
            probed += raw
            if matched == 1:
                append(i)
                for j, column in enumerate(entry_cols):
                    new_cols[j].append(column[0])
            elif matched:
                rep.extend([i] * matched)
                for j, column in enumerate(entry_cols):
                    new_cols[j].extend(column)
        i += 1
    counters.index_lookups += n
    counters.index_probe_tuples += probed
    carry = [[col[i] for i in rep] for col in batch.cols]
    names = batch.vars + tuple(name for _col, name in plan.extract)
    return Batch(names, carry + new_cols, len(rep), atoms)


def run_broadcast(batch: Batch, plan, source, atoms: AtomTable, ctx=None) -> Batch:
    """No shared variables: compute extension fragments once, broadcast.

    Candidates come from the source's own ``probe``/``scan`` (one call per
    batch, exactly like the row engine's one call per binding group), so
    scan and probe counters are the source's, unchanged.  Empty-extraction
    fragments preserve multiplicity: each surviving candidate contributes
    one copy of every input row, as the row engine's empty-fragment append
    does.

    The common seminaive shape -- full scan, no eq-checks -- takes a
    cached-encode fast path when the source offers ``broadcast_columns``
    (relations cache per ``(uid, version)`` in ``ctx``, deltas on
    themselves), so an unchanged source broadcast by several rules and
    rounds is interned once instead of every time.  The source still
    charges the scan, keeping counters identical to the uncached path.
    """
    eq_checks = plan.eq_checks
    extract = plan.extract
    if ctx is not None and not plan.probe_cols and not eq_checks:
        encode = getattr(source, "broadcast_columns", None)
        if encode is not None:
            frag_cols = encode(ctx, tuple(c for c, _name in extract))
            return _broadcast_tail(batch, frag_cols, len(source), extract, atoms)
    if plan.probe_cols:
        key = tuple(value for _col, _kind, value in plan.key_cols)
        candidates = source.probe(plan.probe_cols, key)
    else:
        candidates = source.scan()
    intern = atoms.intern
    if eq_checks:
        survivors = [
            row
            for row in candidates
            if all(row[c] == row[c0] for c, c0 in eq_checks)
        ]
    else:
        survivors = candidates if isinstance(candidates, list) else list(candidates)
    # Column-at-a-time encode: one comprehension per extracted column.
    frag_cols = [[intern(row[c]) for row in survivors] for c, _name in extract]
    return _broadcast_tail(batch, frag_cols, len(survivors), extract, atoms)


def _broadcast_tail(batch: Batch, frag_cols, nfrag: int, extract, atoms) -> Batch:
    """Cross the encoded fragment columns with the carried batch columns."""
    names = batch.vars + tuple(name for _col, name in extract)
    n = batch.length
    if nfrag == 0:
        return Batch(names, [[] for _ in names], 0, atoms)
    if nfrag == 1:
        carry = [list(col) for col in batch.cols]
    else:
        carry = [
            [value for value in col for _ in range(nfrag)] for col in batch.cols
        ]
    new_cols = [col * n for col in frag_cols]
    return Batch(names, carry + new_cols, n * nfrag, atoms)


def run_member(batch: Batch, plan, rowset, counters, atoms: AtomTable) -> Batch:
    """Negated fully-covered literal: batch anti-membership filter.

    Row-engine parity: ``index_probe_tuples`` += 1 per *hit* only (the
    ``contains`` charge), survivors keep input order.
    """
    key_cols = plan.key_cols
    n = batch.length
    parts = [
        batch.col(value) if kind == "var" else [atoms.intern(value)] * n
        for _col, kind, value in key_cols
    ]
    keep: list = []
    hits = 0
    for i, key in enumerate(zip(*parts)):
        if key in rowset:
            hits += 1
        else:
            keep.append(i)
    counters.index_probe_tuples += hits
    if len(keep) == n:
        return batch
    return batch.take(keep)
