"""Term interning: the dictionary encoding behind columnar batches.

A columnar batch stores integer ids, not Term objects; the
:class:`AtomTable` is the shared two-way mapping.  One table is shared per
:class:`~repro.storage.database.Database` (the engine's IDB shares its
EDB's table), because ids from different relations meet in join keys and
must be comparable.

Interning uses plain dict semantics over Term hash/equality, so two terms
that compare equal (``Num(2)`` and ``Num(2.0)``) receive the same id --
exactly the grouping a Term-keyed hash bucket gives the row engine.
Decoding returns the first-interned representative, which is ``==`` to
every term it stands for.
"""

from __future__ import annotations

from typing import List, Tuple


class AtomTable:
    """Bidirectional Term <-> int id map (append-only)."""

    __slots__ = ("_ids", "_terms")

    def __init__(self):
        self._ids: dict = {}
        self._terms: list = []

    def __len__(self) -> int:
        return len(self._terms)

    def intern(self, term) -> int:
        i = self._ids.get(term)
        if i is None:
            i = len(self._terms)
            self._ids[term] = i
            self._terms.append(term)
        return i

    def intern_row(self, row) -> Tuple[int, ...]:
        ids = self._ids
        terms = self._terms
        out = []
        for term in row:
            i = ids.get(term)
            if i is None:
                i = len(terms)
                ids[term] = i
                terms.append(term)
            out.append(i)
        return tuple(out)

    def intern_column(self, rows, col: int) -> List[int]:
        """Encode one column of an iterable of rows."""
        ids = self._ids
        terms = self._terms
        out = []
        for row in rows:
            term = row[col]
            i = ids.get(term)
            if i is None:
                i = len(terms)
                ids[term] = i
                terms.append(term)
            out.append(i)
        return out

    def term(self, i: int):
        return self._terms[i]

    def decode(self, column) -> list:
        """Id column -> Term list (representatives)."""
        terms = self._terms
        return [terms[i] for i in column]
