"""The columnar binding batch: parallel id arrays, one per variable.

A :class:`Batch` is the set-at-a-time replacement for the NAIL! body
evaluator's ``List[dict[var, Term]]``: every row binds exactly the same
variables (homogeneous by construction), each variable's values live in
one flat list of :class:`~repro.col.atoms.AtomTable` ids, and row order /
multiplicity match what the row engine would have produced -- the batch is
a *representation* change, never a semantics change.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class Batch:
    """Homogeneous bindings as parallel id columns."""

    __slots__ = ("vars", "cols", "length", "atoms")

    def __init__(
        self,
        vars: Sequence[str],
        cols: Sequence[list],
        length: Optional[int] = None,
        atoms=None,
    ):
        self.vars: Tuple[str, ...] = tuple(vars)
        self.cols: List[list] = list(cols)
        if length is None:
            length = len(self.cols[0]) if self.cols else 0
        self.length = length
        self.atoms = atoms

    @classmethod
    def unit(cls, atoms=None) -> "Batch":
        """The seed batch: one row binding nothing (``[{}]``)."""
        return cls((), (), 1, atoms)

    def __len__(self) -> int:
        return self.length

    def col(self, name: str) -> list:
        return self.cols[self.vars.index(name)]

    def take(self, indexes: Sequence[int]) -> "Batch":
        """Row selection/replication by index list, order-preserving."""
        return Batch(
            self.vars,
            [[col[i] for i in indexes] for col in self.cols],
            len(indexes),
            self.atoms,
        )

    def to_dicts(self, atoms=None) -> list:
        """Decode to the row engine's binding dicts (order/multiplicity
        preserved) -- the per-literal fallback boundary."""
        atoms = atoms if atoms is not None else self.atoms
        names = self.vars
        if not names:
            return [{} for _ in range(self.length)]
        decoded = [atoms.decode(col) for col in self.cols]
        return [dict(zip(names, values)) for values in zip(*decoded)]

    def concat(self, other: "Batch") -> "Batch":
        """Append another batch with the same variable set (parallel merge)."""
        if other.vars != self.vars:
            raise ValueError("cannot concat batches with different variables")
        return Batch(
            self.vars,
            [a + b for a, b in zip(self.cols, other.cols)],
            self.length + other.length,
            self.atoms,
        )

    def slices(self, bounds: Sequence[Tuple[int, int]]) -> List["Batch"]:
        """Contiguous row slices (the batch-aware partition split)."""
        return [
            Batch(self.vars, [col[lo:hi] for col in self.cols], hi - lo, self.atoms)
            for lo, hi in bounds
        ]


def encode_dicts(bindings_list, atoms) -> Optional[Batch]:
    """Encode homogeneous binding dicts into a batch; None if mixed.

    ``[{}]`` seeds become the unit batch.  A heterogeneous list (several
    bound-variable signatures, as magic seeds occasionally produce) stays
    on the row path.
    """
    if not bindings_list:
        return Batch((), (), 0, atoms)
    first = bindings_list[0]
    names = tuple(first)
    for b in bindings_list:
        if len(b) != len(names):
            return None
    if len(bindings_list) > 1:
        keys = set(names)
        for b in bindings_list:
            if set(b) != keys:
                return None
    if not names:
        return Batch((), (), len(bindings_list), atoms)
    intern = atoms.intern
    cols = [[intern(b[name]) for b in bindings_list] for name in names]
    return Batch(names, cols, len(bindings_list), atoms)


def project_batch(batch: Batch, live: Sequence[str]) -> Batch:
    """Projection push-down on a batch: drop dead columns, dedup rows.

    Mirrors ``repro.nail.bodyeval._project_bindings`` exactly: the dedup
    key is the live-variable projection (variables absent from the batch
    are a constant ``None`` for every row, so they never split a class),
    and the first occurrence survives in input order.  Charges nothing,
    like the row version.
    """
    keep = [i for i, name in enumerate(batch.vars) if name in live]
    names = tuple(batch.vars[i] for i in keep)
    cols = [batch.cols[i] for i in keep]
    if not cols:
        return Batch(names, (), 1 if batch.length else 0, batch.atoms)
    seen = set()
    indexes = []
    if len(cols) == 1:
        col = cols[0]
        for i in range(batch.length):
            key = col[i]
            if key not in seen:
                seen.add(key)
                indexes.append(i)
    else:
        for i, key in enumerate(zip(*cols)):
            if key not in seen:
                seen.add(key)
                indexes.append(i)
    if len(indexes) == batch.length:
        return Batch(names, cols, batch.length, batch.atoms)
    return Batch(
        names, [[col[i] for i in indexes] for col in cols], len(indexes), batch.atoms
    )
