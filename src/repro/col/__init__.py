"""repro.col: columnar batch execution for the join hot path.

Flat relations are encoded as parallel arrays of interned term ids (one
:class:`AtomTable` shared per database), rule-body binding streams become
:class:`Batch` objects, and the dominant join kernels -- hash build,
probe/extract, eq-check filter, dedup, membership -- run as plan-
specialized batch operators instead of per-tuple ``dict[var, Term]``
shuffling.  ``batch_mode="row"`` keeps the row engine as the differential
baseline; a columnar run charges bit-identical cost counters (see
:mod:`repro.col.kernels` for the parity contract) so the two modes are
interchangeable everywhere, including under ``parallel_mode="partition"``.
"""

from repro.col.atoms import AtomTable
from repro.col.batch import Batch, encode_dicts, project_batch
from repro.col.kernels import (
    ColumnarContext,
    run_broadcast,
    run_member,
    run_probe,
)

__all__ = [
    "AtomTable",
    "Batch",
    "ColumnarContext",
    "encode_dicts",
    "project_batch",
    "run_broadcast",
    "run_member",
    "run_probe",
]
