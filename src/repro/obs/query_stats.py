"""Per-query work accounting: counter deltas + wall-clock per entry point.

Every :class:`~repro.core.result.QueryResult` carries one of these; the
facade diffs the database's :class:`CostCounters` around each entry point
(``query``/``query_magic``/``call``/``rows``) so a query's cost can be
read without resetting the global counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping


@dataclass(frozen=True)
class QueryStats:
    """What one entry-point invocation cost.

    ``counters`` is the full per-counter delta (all fields, zeros
    included) in :data:`repro.storage.stats.COUNTER_FIELDS` order;
    ``nonzero`` narrows it to the counters that moved.
    """

    query: str
    resolution: str  # "nail" | "magic" | "edb" | "procedure" | "none"
    rows: int
    elapsed_s: float
    counters: Mapping[str, int] = field(default_factory=dict)

    @property
    def nonzero(self) -> Dict[str, int]:
        return {name: value for name, value in self.counters.items() if value}

    @property
    def idb_cache_hits(self) -> int:
        """Strata (and demand entries) this query served straight from the
        incrementally maintained IDB cache."""
        return self.counters.get("idb_cache_hits", 0)

    @property
    def idb_delta_rounds(self) -> int:
        """Seminaive rounds spent repairing cached strata for this query."""
        return self.counters.get("idb_delta_rounds", 0)

    @property
    def glue_hash_joins(self) -> int:
        """Glue VM scan steps this query executed as planned hash joins
        (one per resolved source) instead of per-row nested matching."""
        return self.counters.get("glue_hash_joins", 0)

    @property
    def total_tuple_touches(self) -> int:
        """Same scalar as ``CostCounters.total_tuple_touches``, per query."""
        get = self.counters.get
        return (
            get("tuples_scanned", 0)
            + get("index_probe_tuples", 0)
            + get("index_build_tuples", 0)
            + get("inserts", 0)
            + get("deletes", 0)
            + get("materialized_tuples", 0)
        )

    def format(self) -> str:
        """A short human-readable block (used by the REPL's ``.last``)."""
        lines = [
            f"query:      {self.query}",
            f"resolution: {self.resolution}",
            f"rows:       {self.rows}",
            f"elapsed:    {self.elapsed_s * 1000.0:.3f} ms",
        ]
        moved = self.nonzero
        if moved:
            lines.append("counters:")
            for name in sorted(moved):
                lines.append(f"  {name:22s} {moved[name]}")
        else:
            lines.append("counters:   (no storage work recorded)")
        return "\n".join(lines)
