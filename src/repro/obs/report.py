"""Rendering of traces: ``EXPLAIN ANALYZE`` reports and REPL profiles.

The renderers consume :class:`~repro.obs.tracer.TraceEvent` lists.  Sinks
receive span events at exit (children first), so rendering sorts on
``seq`` -- the deterministic start order -- and indents by ``depth``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.obs.query_stats import QueryStats
from repro.obs.tracer import TraceEvent
from repro.opt.plan import fmt_est


def _format_counters(counters) -> str:
    if not counters:
        return ""
    return " ".join(f"{name}={counters[name]}" for name in sorted(counters))


def format_event(event: TraceEvent) -> str:
    pad = "  " * event.depth
    parts = [f"{pad}{event.kind:<14s} {event.name}"]
    if event.rows is not None:
        parts.append(f"rows={event.rows}")
    if event.dur_s:
        parts.append(f"{event.dur_s * 1000.0:.3f}ms")
    counters = _format_counters(event.counters)
    if counters:
        parts.append(f"[{counters}]")
    for key in sorted(event.attrs):
        parts.append(f"{key}={event.attrs[key]}")
    return "  ".join(parts)


def format_event_tree(events: Iterable[TraceEvent]) -> List[str]:
    """One line per event, program order, indented by nesting depth."""
    return [format_event(e) for e in sorted(events, key=lambda e: e.seq)]


def render_profile(stats: QueryStats, events: Sequence[TraceEvent] = ()) -> str:
    """The REPL ``.last`` view: stats block plus the trace tree (if any)."""
    out = [stats.format()]
    if events:
        out.append("trace:")
        out.extend("  " + line for line in format_event_tree(events))
    return "\n".join(out)


def render_joins_table(events: Sequence[TraceEvent]) -> List[str]:
    """The estimated-vs-actual join table, one row per ``join`` event.

    Both engines emit the same event schema (strategy, probe-key columns,
    input sizes, planner estimate, actual output rows), so NAIL! rule
    bodies and Glue statement bodies render through this one table.
    """
    joins = [e for e in sorted(events, key=lambda e: e.seq) if e.kind == "join"]
    if not joins:
        return []
    table = [("join", "strategy", "key", "bindings", "source", "est", "actual")]
    for event in joins:
        attrs = event.attrs
        actual = attrs.get("actual_rows", event.rows)
        table.append(
            (
                event.name,
                str(attrs.get("strategy", "?")),
                str(attrs.get("key", [])),
                str(attrs.get("bindings", "?")),
                str(attrs.get("source", "?")),
                fmt_est(attrs.get("est_rows")),
                "?" if actual is None else str(actual),
            )
        )
    widths = [max(len(row[col]) for row in table) for col in range(len(table[0]))]
    lines = ["Joins (estimated vs actual)", "---------------------------"]
    for row in table:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
    return lines


def render_batch_kernel_table(events: Sequence[TraceEvent]) -> List[str]:
    """Columnar kernel activity, one row per ``batch_kernel`` event.

    Shows which specialized kernel ran each literal (probe / broadcast /
    member / anti-static), the batch width it consumed, the rows it
    produced, and whether the kernel's hash state came out of the
    per-database cache (``hit``) or was rebuilt for a new relation
    version (``miss``; ``-`` for stateless kernels).
    """
    kernels = [
        e for e in sorted(events, key=lambda e: e.seq) if e.kind == "batch_kernel"
    ]
    if not kernels:
        return []
    table = [("literal", "kernel", "batch", "rows", "cache")]
    for event in kernels:
        attrs = event.attrs
        cache = attrs.get("cache")
        table.append(
            (
                event.name,
                str(attrs.get("kernel", "?")),
                str(attrs.get("batch", "?")),
                "?" if event.rows is None else str(event.rows),
                "-" if cache is None else str(cache),
            )
        )
    widths = [max(len(row[col]) for row in table) for col in range(len(table[0]))]
    lines = ["Batch kernels (columnar execution)",
             "----------------------------------"]
    for row in table:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
    return lines


def render_parallel_table(events: Sequence[TraceEvent]) -> List[str]:
    """Per-region partition fan-out, one row per ``parallel_partition``.

    Shows how each parallel region split its work (partition count and
    rows per partition) and how evenly it landed: ``touches`` is the
    per-worker tuple-touch share, the skew signal for the partitioner.
    """
    regions = [
        e for e in sorted(events, key=lambda e: e.seq)
        if e.kind == "parallel_partition"
    ]
    if not regions:
        return []
    table = [("region", "strategy", "workers", "parts", "rows/part", "touches")]
    for event in regions:
        attrs = event.attrs
        touches = attrs.get("worker_touches") or []
        per_part = attrs.get("partition_rows") or []
        table.append(
            (
                event.name,
                str(attrs.get("strategy", "?")),
                str(attrs.get("workers", "?")),
                str(attrs.get("partitions", "?")),
                "/".join(str(r) for r in per_part) if per_part else "?",
                "/".join(str(t) for t in touches) if touches else "?",
            )
        )
    widths = [max(len(row[col]) for row in table) for col in range(len(table[0]))]
    lines = ["Parallel regions (partitions and per-worker skew)",
             "-------------------------------------------------"]
    for row in table:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
    return lines


def render_explain_analyze(
    text: str,
    stats: QueryStats,
    events: Sequence[TraceEvent],
    plan: str = "",
) -> str:
    """The full EXPLAIN ANALYZE report for one query.

    Sections: a header (resolution, rows, elapsed, total counter deltas),
    the static plan as the compiler saw it, and the execution tree with
    per-step actual row counts, per-step counter deltas and timings.
    """
    lines = [f"EXPLAIN ANALYZE {text.strip()}"]
    lines.append(
        f"resolution: {stats.resolution}   rows: {stats.rows}   "
        f"time: {stats.elapsed_s * 1000.0:.3f} ms"
    )
    moved = stats.nonzero
    if moved:
        lines.append("counters:   " + _format_counters(moved))
    if plan:
        lines.append("")
        lines.append("Plan")
        lines.append("----")
        lines.extend(plan.splitlines())
    joins = render_joins_table(events)
    if joins:
        lines.append("")
        lines.extend(joins)
    kernels = render_batch_kernel_table(events)
    if kernels:
        lines.append("")
        lines.extend(kernels)
    par = render_parallel_table(events)
    if par:
        lines.append("")
        lines.extend(par)
    lines.append("")
    lines.append("Execution")
    lines.append("---------")
    tree = format_event_tree(events)
    if tree:
        lines.extend(tree)
    else:
        lines.append("(no events recorded -- results served from cache?)")
    return "\n".join(lines)
