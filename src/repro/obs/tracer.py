"""Structured tracing of query execution.

The paper's evaluation (Sections 9-10) is an argument about *costs*; the
tracer makes those costs attributable to an individual query, stratum,
plan step or fixpoint round instead of one global counter blob.

Architecture: every :class:`~repro.storage.database.Database` owns one
:class:`Tracer` hub that is threaded through the VM, the NAIL! engine and
the relations.  The hub is disabled (``enabled = False``) until a sink is
installed, and every instrumentation site guards on ``tracer.enabled``
before doing any work, so tracing is zero-cost when off.

Event schema (deterministic in structure; wall-clock fields vary):

========== =========================================================
``seq``    start order of the event (spans are sequenced at *enter*)
``depth``  nesting depth at the time the event started
``kind``   ``query`` | ``query_magic`` | ``call`` | ``rows`` |
           ``proc`` | ``stmt`` | ``repeat`` | ``step`` |
           ``pipeline_break`` | ``index_build`` | ``stratum`` |
           ``round`` | ``incremental_round`` | ``pass`` | ``rule`` |
           ``idb_cache_hit`` | ``idb_stale`` | ``demand`` | ``magic`` |
           ``idb_resync`` | ``subscription`` | ``join`` |
           ``exchange`` | ``parallel_partition``
``name``   human-readable label (plan-step text, predicate name, ...)
``rows``   rows produced by the traced unit (``None`` when n/a)
``dur_ms`` wall-clock duration in milliseconds (0 for instant events)
``counters`` nonzero :class:`CostCounters` deltas over the unit
========== =========================================================

Kind-specific attributes (``resolution``, ``module``, ``rounds``, ...)
are merged into the JSON object emitted by :class:`JsonLinesSink`.

Sinks receive span events at span *exit* (children before parents);
consumers rebuild the tree by sorting on ``seq`` and indenting by
``depth``.
"""

from __future__ import annotations

import json
import threading
from time import perf_counter
from typing import Dict, List, Optional

# NOTE: this module must not import repro.storage at module level --
# storage imports the tracer, and the storage package initializer pulls in
# every storage submodule, so a top-level import here would be circular.
# ``counters`` is duck-typed: any object with ``as_tuple()``.


class TraceEvent:
    """One completed span or instant event."""

    __slots__ = ("kind", "name", "seq", "depth", "dur_s", "rows", "counters", "attrs")

    def __init__(
        self,
        kind: str,
        name: str,
        seq: int,
        depth: int,
        dur_s: float = 0.0,
        rows: Optional[int] = None,
        counters: Optional[Dict[str, int]] = None,
        attrs: Optional[dict] = None,
    ):
        self.kind = kind
        self.name = name
        self.seq = seq
        self.depth = depth
        self.dur_s = dur_s
        self.rows = rows
        self.counters = counters if counters is not None else {}
        self.attrs = attrs if attrs is not None else {}

    def to_dict(self) -> dict:
        out = {
            "seq": self.seq,
            "depth": self.depth,
            "kind": self.kind,
            "name": self.name,
            "rows": self.rows,
            "dur_ms": round(self.dur_s * 1000.0, 3),
            "counters": self.counters,
        }
        out.update(self.attrs)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceEvent #{self.seq} d{self.depth} {self.kind} {self.name!r}>"


class TraceSink:
    """Receives completed events; implementations decide what to keep."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError


class CollectingSink(TraceSink):
    """Keeps every event in memory (drives ``.trace`` and EXPLAIN ANALYZE)."""

    def __init__(self):
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()


class JsonLinesSink(TraceSink):
    """Writes one JSON object per event to a text stream (``--trace-json``)."""

    def __init__(self, stream):
        self.stream = stream

    def emit(self, event: TraceEvent) -> None:
        self.stream.write(json.dumps(event.to_dict(), default=str) + "\n")
        flush = getattr(self.stream, "flush", None)
        if flush is not None:
            flush()


class _Span:
    """A live span: counter snapshot + clock at enter, event at exit."""

    __slots__ = ("_tracer", "kind", "name", "attrs", "rows", "_seq", "_depth", "_t0", "_c0")

    def __init__(self, tracer: "Tracer", kind: str, name: str, attrs: dict):
        self._tracer = tracer
        self.kind = kind
        self.name = name
        self.attrs = attrs
        self.rows: Optional[int] = None

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._seq = tracer._next_seq()
        self._depth = tracer._depth
        tracer._depth = self._depth + 1
        counters = tracer.counters
        self._c0 = counters.as_tuple() if counters is not None else None
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur = perf_counter() - self._t0
        tracer = self._tracer
        tracer._depth -= 1
        if self._c0 is not None:
            from repro.storage.stats import nonzero_delta

            delta = nonzero_delta(self._c0, tracer.counters.as_tuple())
        else:
            delta = {}
        tracer._dispatch(
            TraceEvent(self.kind, self.name, self._seq, self._depth, dur,
                       self.rows, delta, self.attrs)
        )
        return False


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    rows = None
    attrs: dict = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """The tracing hub: span/event emission fanned out to sinks.

    ``enabled`` is a plain attribute kept in sync with the sink list so
    hot paths pay one attribute read when tracing is off.

    The hub is shared by every session of the concurrent query server, so
    its mutable pieces are partitioned by thread: nesting depth and the
    session label live in thread-local storage, sequence numbers come from
    one lock-guarded counter (still globally monotonic), and *local sinks*
    (:meth:`add_local_sink`) receive only the calling thread's events --
    that is how each server session collects its own ``.trace`` without
    seeing its neighbours'.  Events produced while a session label is set
    (:meth:`set_session`) carry it as a ``session`` attribute, so globally
    installed sinks (``--trace-json``) can still demultiplex.
    """

    def __init__(self, counters=None):
        self.counters = counters  # duck-typed: needs .as_tuple(); may be None
        self.sinks: List[TraceSink] = []
        self.enabled = False
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._tls = threading.local()
        self._local_sink_count = 0

    # -------------------------------------------------------------- #
    # thread-partitioned state
    # -------------------------------------------------------------- #

    def _next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    @property
    def _depth(self) -> int:
        return getattr(self._tls, "depth", 0)

    @_depth.setter
    def _depth(self, value: int) -> None:
        self._tls.depth = value

    @property
    def session(self) -> Optional[str]:
        """The calling thread's session label, or None."""
        return getattr(self._tls, "session", None)

    def set_session(self, label: Optional[str]) -> None:
        """Tag this thread's subsequent events with ``session=label``."""
        self._tls.session = label

    # -------------------------------------------------------------- #
    # sink management
    # -------------------------------------------------------------- #

    def add_sink(self, sink: TraceSink) -> TraceSink:
        if sink not in self.sinks:
            self.sinks.append(sink)
        self.enabled = True
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        if sink in self.sinks:
            self.sinks.remove(sink)
        self._refresh_enabled()

    def add_local_sink(self, sink: TraceSink) -> TraceSink:
        """Install a sink that receives only this thread's events."""
        sinks = getattr(self._tls, "sinks", None)
        if sinks is None:
            sinks = self._tls.sinks = []
        if sink not in sinks:
            sinks.append(sink)
            with self._seq_lock:
                self._local_sink_count += 1
        self.enabled = True
        return sink

    def remove_local_sink(self, sink: TraceSink) -> None:
        sinks = getattr(self._tls, "sinks", None)
        if sinks and sink in sinks:
            sinks.remove(sink)
            with self._seq_lock:
                self._local_sink_count -= 1
        self._refresh_enabled()

    def _refresh_enabled(self) -> None:
        self.enabled = bool(self.sinks) or self._local_sink_count > 0

    # -------------------------------------------------------------- #
    # emission
    # -------------------------------------------------------------- #

    def span(self, kind: str, name: str, **attrs):
        """A context manager timing a unit of work; set ``.rows`` inside."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, kind, name, attrs)

    def event(
        self,
        kind: str,
        name: str,
        rows: Optional[int] = None,
        counters: Optional[Dict[str, int]] = None,
        dur_s: float = 0.0,
        **attrs,
    ) -> None:
        """An instant (zero-duration) event."""
        if not self.enabled:
            return
        self._dispatch(
            TraceEvent(kind, name, self._next_seq(), self._depth, dur_s, rows,
                       counters, attrs)
        )

    def _dispatch(self, event: TraceEvent) -> None:
        label = self.session
        if label is not None and "session" not in event.attrs:
            event.attrs["session"] = label
        for sink in self.sinks:
            sink.emit(event)
        for sink in getattr(self._tls, "sinks", ()):
            sink.emit(event)


# The shared always-disabled tracer: the default for relations created
# outside any database/system wiring.  Do not install sinks on it.
NULL_TRACER = Tracer()
