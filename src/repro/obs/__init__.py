"""Query-execution observability: tracing, per-query stats, EXPLAIN ANALYZE.

The subsystem has three parts:

* :mod:`repro.obs.tracer` -- a :class:`Tracer` hub owned by each
  :class:`~repro.storage.database.Database` and threaded through the VM,
  the NAIL! engine and the relations.  Disabled (and zero-cost) until a
  sink is installed.
* :mod:`repro.obs.query_stats` -- :class:`QueryStats`, the per-entry-point
  counter-delta/elapsed-time record carried by every
  :class:`~repro.core.result.QueryResult`.
* :mod:`repro.obs.report` -- renderers for EXPLAIN ANALYZE reports and
  REPL profiles.
"""

from repro.obs.query_stats import QueryStats
from repro.obs.report import (
    format_event,
    format_event_tree,
    render_batch_kernel_table,
    render_explain_analyze,
    render_profile,
)
from repro.obs.tracer import (
    NULL_TRACER,
    CollectingSink,
    JsonLinesSink,
    TraceEvent,
    Tracer,
    TraceSink,
)

__all__ = [
    "CollectingSink",
    "JsonLinesSink",
    "NULL_TRACER",
    "QueryStats",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "format_event",
    "format_event_tree",
    "render_batch_kernel_table",
    "render_explain_analyze",
    "render_profile",
]
