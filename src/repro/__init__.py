"""Glue-Nail: a deductive database system.

A from-scratch Python reproduction of *Glue-Nail: A Deductive Database
System* (Phipps, Derr & Ross, SIGMOD 1991): the procedural Glue language,
the declarative NAIL! rule language, HiLog-style higher-order terms and
set-valued attributes, the compile-time module system, the NAIL!-to-Glue
compiler, and the main-memory relational back end with uniondiff and
adaptive indexing.

Quick start::

    from repro import GlueNailSystem

    system = GlueNailSystem()
    system.load('''
        path(X, Y) :- edge(X, Y).
        path(X, Z) :- path(X, Y) & edge(Y, Z).
    ''')
    system.facts("edge", [(1, 2), (2, 3), (3, 4)])
    for row in system.query("path(1, Y)?"):
        print(row)

Durable, multi-client use (see :mod:`repro.txn` and :mod:`repro.server`)::

    system = GlueNailSystem.open("state/")    # WAL + checkpoint, recovered
    with system.transaction():
        system.fact("edge", 4, 5)             # atomic, durable at commit

    # gluenail serve --db state/   +   gluenail connect   on the CLI
"""

from repro import obs
from repro.core.query import rows_to_python, term_to_python
from repro.core.result import QueryResult
from repro.core.system import GlueNailSystem
from repro.errors import CompileError, GlueNailError, GlueRuntimeError, UnsafeRuleError
from repro.obs.query_stats import QueryStats
from repro.storage.database import Database
from repro.terms.term import Atom, Compound, Num, Term, Var, mk

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "CompileError",
    "Compound",
    "Database",
    "GlueNailError",
    "GlueNailSystem",
    "GlueRuntimeError",
    "Num",
    "QueryResult",
    "QueryStats",
    "Term",
    "UnsafeRuleError",
    "Var",
    "mk",
    "obs",
    "rows_to_python",
    "term_to_python",
]
