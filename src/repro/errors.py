"""Exception hierarchy for the Glue-Nail system."""

from __future__ import annotations


class GlueNailError(Exception):
    """Base class for all Glue-Nail errors."""


class CompileError(GlueNailError):
    """A compile-time error: scope, safety, or structural."""


class GlueRuntimeError(GlueNailError):
    """A run-time evaluation error (type error, unbound name, ...)."""


class UnsafeRuleError(CompileError):
    """A NAIL! rule is not range-restricted and cannot be evaluated
    bottom-up without demand (magic-set) bindings."""
