"""HiLog-style higher-order support (paper Section 5).

Set-valued attributes hold *predicate names*, not extensions: "a set valued
attribute contains the name of a predicate (i.e. the name of a set)".  Two
set attributes are equal when their names match -- a string comparison --
and member-level equality is an explicit operation (the paper's ``set_eq``
procedure), which this package also provides as a library function.
"""

from repro.hilog.sets import (
    SET_EQ_GLUE_SOURCE,
    member_rows,
    set_eq,
    set_insert,
    set_name,
)
from repro.hilog.params import specialize_rule, specialize_rules

__all__ = [
    "SET_EQ_GLUE_SOURCE",
    "member_rows",
    "set_eq",
    "set_insert",
    "set_name",
    "specialize_rule",
    "specialize_rules",
]
