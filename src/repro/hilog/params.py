"""Parameterized predicates (paper Section 5.2).

The HiLog scheme lets NAIL! define one universal predicate such as::

    tc(E, X, X).
    tc(E, X, Z) :- tc(E, X, Y) & E(Y, Z).

Bottom-up evaluation needs the parameters bound; two ways are provided:
demand-driven evaluation (:func:`repro.nail.engine.magic_query`) and
*specialization* -- substituting concrete values for the parameter
variables at compile time, yielding ordinary first-order rules.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.lang.ast import (
    AggCall,
    BinOp,
    CompareSubgoal,
    FunCall,
    GroupBySubgoal,
    PredSubgoal,
    RuleDecl,
    UnaryOp,
)
from repro.terms.matching import substitute
from repro.terms.term import Term, mk


def _subst_expr(expr, bindings: Mapping[str, Term]):
    if isinstance(expr, Term):
        return substitute(expr, bindings)
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _subst_expr(expr.left, bindings), _subst_expr(expr.right, bindings))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _subst_expr(expr.operand, bindings))
    if isinstance(expr, FunCall):
        return FunCall(expr.name, tuple(_subst_expr(a, bindings) for a in expr.args))
    if isinstance(expr, AggCall):
        return AggCall(expr.op, _subst_expr(expr.arg, bindings))
    raise TypeError(f"not an expression: {expr!r}")


def _subst_subgoal(subgoal, bindings: Mapping[str, Term]):
    if isinstance(subgoal, PredSubgoal):
        return PredSubgoal(
            pred=substitute(subgoal.pred, bindings),
            args=tuple(substitute(a, bindings) for a in subgoal.args),
            negated=subgoal.negated,
        )
    if isinstance(subgoal, CompareSubgoal):
        return CompareSubgoal(
            op=subgoal.op,
            left=_subst_expr(subgoal.left, bindings),
            right=_subst_expr(subgoal.right, bindings),
        )
    if isinstance(subgoal, GroupBySubgoal):
        return GroupBySubgoal(terms=tuple(substitute(t, bindings) for t in subgoal.terms))
    raise TypeError(f"cannot specialize subgoal {subgoal!r}")


def specialize_rule(rule: RuleDecl, params: Mapping[str, object]) -> RuleDecl:
    """Substitute concrete values for parameter variables in one rule."""
    bindings: Dict[str, Term] = {name: mk(value) for name, value in params.items()}
    return RuleDecl(
        head_pred=substitute(rule.head_pred, bindings),
        head_args=tuple(substitute(a, bindings) for a in rule.head_args),
        body=tuple(_subst_subgoal(s, bindings) for s in rule.body),
        line=rule.line,
    )


def specialize_rules(
    rules: Sequence[RuleDecl], params: Mapping[str, object]
) -> List[RuleDecl]:
    """Specialize every rule; rules not mentioning the parameters pass
    through unchanged (substitution is a no-op on them)."""
    return [specialize_rule(rule, params) for rule in rules]
