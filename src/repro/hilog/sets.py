"""Set-valued attributes as predicate names.

The class_info example of paper Section 5.1: ``tas(ID)`` and
``students(ID)`` are predicate *names* built with compound terms; the sets
they denote are ordinary relations stored under those names.  Name equality
is therefore a term comparison, and only an explicit ``set_eq`` compares
members.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.storage.database import Database
from repro.terms.term import Compound, Term, mk

# The paper's set_eq procedure (Section 5.1), verbatim modulo syntax
# normalisation; used by examples and tests through the full pipeline.
SET_EQ_GLUE_SOURCE = """
proc set_eq(S, T:)
rels different(A, B);
  different(S, T) := in(S, T) & S(X) & !T(X).
  different(S, T) += in(S, T) & T(X) & !S(X).
  return(S, T:) := !different(S, T).
end
"""


def set_name(base, *params) -> Term:
    """Build a set name term: ``set_name("students", "cs99")`` is the
    predicate name ``students(cs99)``."""
    base_term = mk(base)
    if not params:
        return base_term
    return Compound(base_term, tuple(mk(p) for p in params))


def set_insert(db: Database, name, member, arity: int = 1) -> bool:
    """Add a member tuple to the set (relation) called ``name``."""
    name_term = mk(name) if not isinstance(name, Term) else name
    row = member if isinstance(member, tuple) else (member,)
    row = tuple(mk(v) for v in row)
    if len(row) != arity:
        raise ValueError(f"set {name_term} has arity {arity}, got {len(row)}")
    return db.relation(name_term, arity).insert(row)


def member_rows(db: Database, name, arity: int = 1) -> List[Tuple[Term, ...]]:
    """The members of the set named ``name`` (empty if never created)."""
    name_term = mk(name) if not isinstance(name, Term) else name
    relation = db.get(name_term, arity)
    if relation is None:
        return []
    return relation.copy_rows()


def set_eq(db: Database, left, right, arity: int = 1) -> bool:
    """Member-level set equality (the library form of the paper's
    ``set_eq`` Glue procedure).

    Fast path: identical names denote identical sets -- "if two set valued
    attributes contain the same predicate name, then the two sets are
    identical.  Hence much of the time a simple string-string matching
    suffices."
    """
    left_term = mk(left) if not isinstance(left, Term) else left
    right_term = mk(right) if not isinstance(right, Term) else right
    if left_term == right_term:
        return True
    left_rows = set(member_rows(db, left_term, arity))
    right_rows = set(member_rows(db, right_term, arity))
    return left_rows == right_rows
