"""The version store: published catalog snapshots and write windows.

One ``VersionStore`` sits next to one ``Database``.  Writers bracket their
mutations in a *write window* (``begin_window`` .. ``publish``); readers
``pin()`` the latest published ``Snapshot`` -- a catalog of frozen
relations (``Relation.freeze``) that share row storage with the live
relations until the next mutation copies-on-write.  Because frozen clones
keep the live relation's ``(uid, version)`` fingerprint, everything keyed
by fingerprints -- the NAIL! engine's incremental-IDB cache, the columnar
kernel caches -- treats a snapshot exactly like the live relation at the
published version, so cached derived relations stay correct across
concurrent repair.

Threading contract: ``begin_window``/``publish`` are called by the single
thread holding the server's write lock; ``pin`` may be called from any
reader thread at any time.  Catalog (re)builds only happen while no window
is open, and a writer cannot open one mid-build because both paths take
``_lock`` -- so ``freeze()`` never races a mutation.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.storage.database import Database, PredKey, pred_key
from repro.storage.relation import Relation


class Snapshot:
    """One published catalog: immutable relations at a database version.

    ``catalog`` maps ``(name term, arity)`` to a frozen ``Relation``.
    Relations declared after publication resolve to cached empty
    *placeholders* (immutable, so a misrouted mutation raises instead of
    silently corrupting a reader's view).  There is no explicit unpin or
    refcount: a snapshot stays valid for as long as anyone holds a
    reference to it, and the garbage collector reclaims retired versions.
    """

    __slots__ = ("db_version", "catalog", "_placeholders", "_placeholder_lock")

    def __init__(self, db_version: int, catalog: dict):
        self.db_version = db_version
        self.catalog = catalog
        self._placeholders: dict = {}
        self._placeholder_lock = threading.Lock()

    def get(self, name, arity: int) -> Optional[Relation]:
        return self.catalog.get(pred_key(name, arity))

    def placeholder(self, key: PredKey) -> Relation:
        """An empty immutable relation for a key this snapshot predates."""
        with self._placeholder_lock:
            relation = self._placeholders.get(key)
            if relation is None:
                relation = Relation(key[0], key[1]).freeze()
                self._placeholders[key] = relation
            return relation

    def total_rows(self) -> int:
        return sum(len(rel) for rel in self.catalog.values())

    def __len__(self) -> int:
        return len(self.catalog)


class VersionStore:
    """Publishes catalog snapshots of one database; hands out pins.

    ``pin()`` is the reader entry point: it returns the newest published
    ``Snapshot``, rebuilding one first if the database moved while no
    write window was open (embedded single-threaded use therefore gets
    snapshot-now semantics without ever calling ``begin_window``).  While
    a window *is* open, ``pin`` serves the previous published version --
    copy-on-write keeps its contents consistent even as the writer runs --
    or returns ``None`` when nothing was ever published, in which case the
    caller falls back to a read-locked pass (counted
    ``snapshot_fallbacks``).
    """

    def __init__(self, db: Database):
        self.db = db
        self._lock = threading.Lock()
        self._published: Optional[Snapshot] = None
        self._window_depth = 0
        self.publishes = 0

    # ------------------------------------------------------------------ #
    # writer side
    # ------------------------------------------------------------------ #

    def begin_window(self) -> None:
        """Open a write window: the caller (holding the database's write
        lock) is about to mutate.  Re-entrant for nested brackets -- an
        explicit transaction's window spans ``begin`` .. ``commit`` while
        each op inside brackets itself."""
        with self._lock:
            self._window_depth += 1

    def publish(self) -> Optional[Snapshot]:
        """Close the window; on the outermost close, publish the current
        database state as the new read snapshot (when it actually moved).

        Returns the snapshot now visible to readers.  Emits a ``publish``
        trace event carrying the published version.
        """
        with self._lock:
            if self._window_depth > 0:
                self._window_depth -= 1
            if self._window_depth > 0:
                return self._published
            snapshot = self._rebuild_locked()
            return snapshot

    def window_open(self) -> bool:
        with self._lock:
            return self._window_depth > 0

    # ------------------------------------------------------------------ #
    # reader side
    # ------------------------------------------------------------------ #

    def pin(self) -> Optional[Snapshot]:
        """The newest published snapshot, or None when the caller must
        fall back to the read lock (window open, nothing published yet)."""
        counters = self.db.counters
        with self._lock:
            snapshot = self._published
            if self._window_depth == 0:
                if snapshot is None or snapshot.db_version != self.db.version:
                    # The database moved outside any window (embedded use,
                    # or reader compiles declaring relations): publish on
                    # demand.  No window can open mid-build -- that path
                    # also needs ``_lock``.
                    snapshot = self._rebuild_locked()
            if snapshot is None:
                counters.snapshot_fallbacks += 1
                return None
        counters.snapshot_pins += 1
        tracer = self.db.tracer
        if tracer.enabled:
            tracer.event(
                "mvcc", "snapshot", version=snapshot.db_version,
                relations=len(snapshot),
            )
        return snapshot

    def stats(self) -> dict:
        """Store-level stats for the server ``stats`` op."""
        with self._lock:
            snapshot = self._published
            return {
                "published_version": None if snapshot is None else snapshot.db_version,
                "published_relations": 0 if snapshot is None else len(snapshot),
                "publishes": self.publishes,
                "window_open": self._window_depth > 0,
            }

    # ------------------------------------------------------------------ #

    def _rebuild_locked(self) -> Snapshot:
        """Freeze the live catalog into a new published snapshot.

        Caller holds ``_lock`` with no window open, so no mutation races
        the freezes.  ``freeze()`` reuses its cached clone for relations
        that did not change, so republishing after a small write costs one
        dict build plus one real freeze per *written* relation.  The
        version is read before the catalog: a reader-compile declare
        landing in between leaves the snapshot one declare behind its
        stamp, which only costs an extra rebuild on the next pin.
        """
        version = self.db.version
        previous = self._published
        if previous is not None and previous.db_version == version:
            return previous
        catalog = {
            key: rel.freeze() for key, rel in self.db.snapshot_relations()
        }
        snapshot = Snapshot(version, catalog)
        self._published = snapshot
        self.publishes += 1
        tracer = self.db.tracer
        if tracer.enabled:
            tracer.event(
                "mvcc", "publish", version=version, relations=len(catalog),
            )
        return snapshot
