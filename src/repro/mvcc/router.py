"""A ``Database``-shaped facade that routes reads through a pinned snapshot.

``GlueNailSystem`` (and through it the NAIL! engine, the Glue VM, the
optimizer and the columnar kernels) only ever sees ``self.db``.  Wrapping
that handle in a ``SnapshotRouter`` makes every one of those layers
snapshot-capable without touching them: while a thread holds a pin
(``with router.pinned(snapshot):``) the catalog read surface --
``get``/``keys``/``items``/``version``/``snapshot_relations``/... --
resolves against the snapshot's frozen relations, so evaluation, adaptive
index builds and fingerprint-keyed caches all run against one immutable
published version.  Everything else (declares from the compile step,
writes, journal attachment) goes to the live database.

The pin is thread-local: the server pins per request thread, so one
session's reader never changes what a concurrently flushing subscription
engine sees.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.storage.database import Database, PredKey, pred_key
from repro.storage.relation import Relation
from repro.terms.term import sort_key

from repro.mvcc.store import Snapshot


class SnapshotRouter:
    """Routes the ``Database`` read surface through a per-thread snapshot."""

    def __init__(self, db: Database, store=None):
        from repro.mvcc.store import VersionStore

        self.live = db
        self.store = store if store is not None else VersionStore(db)
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # pinning
    # ------------------------------------------------------------------ #

    @property
    def pinned_snapshot(self) -> Optional[Snapshot]:
        return getattr(self._local, "snap", None)

    @property
    def snapshot_active(self) -> bool:
        return getattr(self._local, "snap", None) is not None

    @contextmanager
    def pinned(self, snapshot: Snapshot):
        """Route this thread's reads through ``snapshot`` for the block."""
        previous = getattr(self._local, "snap", None)
        self._local.snap = snapshot
        try:
            yield snapshot
        finally:
            self._local.snap = previous

    # ------------------------------------------------------------------ #
    # live-database plumbing the evaluators reach through the handle
    # ------------------------------------------------------------------ #

    @property
    def index_policy(self):
        return self.live.index_policy

    @property
    def counters(self):
        return self.live.counters

    @counters.setter
    def counters(self, value) -> None:
        self.live.counters = value

    @property
    def tracer(self):
        return self.live.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.live.tracer = value

    @property
    def columnar(self):
        return self.live.columnar

    @property
    def journal(self):
        return self.live.journal

    def attach_journal(self, journal) -> None:
        self.live.attach_journal(journal)

    def __getattr__(self, name):
        # Anything not explicitly routed (private helpers, future surface)
        # behaves exactly like the live database.
        if name == "live":  # guard against recursion pre-__init__
            raise AttributeError(name)
        return getattr(self.live, name)

    # ------------------------------------------------------------------ #
    # catalog reads: snapshot when pinned, live otherwise
    # ------------------------------------------------------------------ #

    @property
    def version(self) -> int:
        snap = getattr(self._local, "snap", None)
        if snap is not None:
            return snap.db_version
        return self.live.version

    def get(self, name, arity: int) -> Optional[Relation]:
        snap = getattr(self._local, "snap", None)
        if snap is None:
            return self.live.get(name, arity)
        key = pred_key(name, arity)
        relation = snap.catalog.get(key)
        if relation is not None:
            return relation
        if self.live.get(name, arity) is not None:
            # Declared after publication: this snapshot predates it, so it
            # reads as empty -- and immutably so, which turns a misrouted
            # write into a loud error instead of a corrupted reader view.
            return snap.placeholder(key)
        return None

    def relation(self, name, arity: int) -> Relation:
        snap = getattr(self._local, "snap", None)
        if snap is None:
            return self.live.relation(name, arity)
        key = pred_key(name, arity)
        relation = snap.catalog.get(key)
        if relation is not None:
            return relation
        # Create-on-reference still declares on the live catalog (so the
        # compile's schema bookkeeping works) but hands the pinned reader
        # the snapshot's empty view of it.
        self.live.relation(name, arity)
        return snap.placeholder(key)

    def exists(self, name, arity: int) -> bool:
        snap = getattr(self._local, "snap", None)
        if snap is None:
            return self.live.exists(name, arity)
        return pred_key(name, arity) in snap.catalog

    def snapshot_relations(self) -> list:
        snap = getattr(self._local, "snap", None)
        if snap is None:
            return self.live.snapshot_relations()
        return list(snap.catalog.items())

    def version_vector(self) -> dict:
        return {key: rel.fingerprint for key, rel in self.snapshot_relations()}

    def keys(self) -> Iterator[PredKey]:
        snap = getattr(self._local, "snap", None)
        if snap is None:
            return self.live.keys()
        return iter(snap.catalog)

    def items(self) -> Iterator[Tuple[PredKey, Relation]]:
        snap = getattr(self._local, "snap", None)
        if snap is None:
            return self.live.items()
        return iter(snap.catalog.items())

    def sorted_keys(self) -> list:
        snap = getattr(self._local, "snap", None)
        if snap is None:
            return self.live.sorted_keys()
        return sorted(snap.catalog, key=lambda key: (sort_key(key[0]), key[1]))

    def __len__(self) -> int:
        snap = getattr(self._local, "snap", None)
        if snap is None:
            return len(self.live)
        return len(snap.catalog)

    def __contains__(self, key) -> bool:
        if isinstance(key, tuple) and len(key) == 2 and isinstance(key[1], int):
            snap = getattr(self._local, "snap", None)
            if snap is None:
                return key in self.live
            return pred_key(key[0], key[1]) in snap.catalog
        raise TypeError("membership test needs a (name, arity) pair")

    def total_rows(self) -> int:
        snap = getattr(self._local, "snap", None)
        if snap is None:
            return self.live.total_rows()
        return snap.total_rows()

    # ------------------------------------------------------------------ #
    # mutations: always the live database
    # ------------------------------------------------------------------ #

    def declare(self, name, arity: int) -> Relation:
        return self.live.declare(name, arity)

    def drop(self, name, arity: int) -> bool:
        return self.live.drop(name, arity)

    def fact(self, name, *values) -> bool:
        return self.live.fact(name, *values)

    def facts(self, name, rows) -> int:
        return self.live.facts(name, rows)
