"""MVCC snapshot reads: immutable published versions for lock-free readers.

The server's writer-preferring RWLock stalls every reader for the whole
write window.  This package gives read-only requests an immutable snapshot
of the EDB catalog instead: writers prepare against the live relations
(their in-progress batches stay private because frozen snapshots
copy-on-write, see ``Relation.freeze``) and *publish* atomically when the
write window closes; readers *pin* the latest published catalog and
evaluate against it without touching the lock at all, so the RWLock
degenerates to writer-writer serialization.

- ``VersionStore``   -- publishes catalogs of frozen relations, hands out pins
- ``Snapshot``       -- one published catalog: ``{(name, arity): frozen Relation}``
- ``SnapshotRouter`` -- a ``Database``-shaped facade that resolves reads
  through the pinned snapshot (per thread) and routes everything else to
  the live database
"""

from repro.mvcc.router import SnapshotRouter
from repro.mvcc.store import Snapshot, VersionStore

__all__ = ["Snapshot", "SnapshotRouter", "VersionStore"]
