"""Push-based subscriptions over the incremental-maintenance delta pipeline.

The :class:`SubscriptionManager` turns the deltas the system already
computes into a push API:

* **EDB predicates** -- committed mutation batches arrive from the
  :class:`~repro.txn.manager.TransactionManager` (the manager registers as
  a commit observer); each batch is netted per predicate (a row inserted
  and deleted inside one transaction cancels out, exactly like
  ``ChangeLog.net_since``) and delivered as insert/delete notifications.

* **IDB predicates** -- the manager registers as a delta listener on the
  NAIL! engine.  When a commit touches a watched predicate's support, the
  engine either *repairs* the stratum (exact per-predicate insert deltas
  flow straight through ``incremental_eval``'s ``new_rows``) or falls back
  to a scoped rebuild.  On rebuild the manager diffs the predicate's new
  extension against its last delivered snapshot -- still exact, both
  inserts and deletes -- and only when that diff would exceed
  ``max_diff_rows`` does it emit an explicit ``resync`` event instead.
  Subscribers therefore never silently miss a change.

* **Transaction consistency** -- delivery happens only from
  ``on_commit``: mutations inside an open transaction buffer in the
  transaction's redo batch and reach subscribers in one flush at commit;
  a rollback delivers nothing (the transaction manager never notifies,
  and any exact repair deltas staged by mid-transaction queries are
  discarded when the engine reports the compensating rebuild).

* **Active rules** -- a Glue ``watch`` declaration becomes a subscription
  whose sink invokes a Glue procedure set-at-a-time with ``(op, row...)``
  tuples; mutations made by the handler cascade as fresh commits, drained
  iteratively with a bounded depth.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.scope import pred_skeleton
from repro.errors import GlueRuntimeError
from repro.sub.queue import (
    OP_DELETE,
    OP_INSERT,
    OP_RESYNC,
    DeliveryQueue,
    Notification,
    Row,
)
from repro.terms.matching import match_tuple
from repro.terms.term import Atom, Term, Var, mk, sort_key


def _row_key(row: Row) -> tuple:
    return tuple(sort_key(term) for term in row)

PredKey = Tuple[Term, int]

#: How many handler-triggered commit batches one flush may chain through
#: before the manager declares the active rules divergent.
MAX_CASCADE = 25


def _lift_pattern(pattern: Sequence[object], arity: int) -> Tuple[Term, ...]:
    """Lift a user-facing pattern (Python values; ``None`` = wildcard) to a
    Term tuple usable with :func:`match_tuple`."""
    if len(pattern) != arity:
        raise GlueRuntimeError(
            f"pattern has {len(pattern)} positions, predicate arity is {arity}"
        )
    lifted: List[Term] = []
    for index, value in enumerate(pattern):
        if value is None:
            lifted.append(Var(f"_W{index}"))
        elif isinstance(value, Term):
            lifted.append(value)
        else:
            lifted.append(mk(value))
    return tuple(lifted)


class Subscription:
    """One registered interest in a predicate's committed deltas.

    Exactly one delivery mode is active: a ``callback`` (invoked on the
    committing thread, transaction already complete) or a bounded
    :class:`DeliveryQueue` the owner drains (the server's pusher thread,
    or :meth:`poll`/:meth:`drain` for embedded use).
    """

    def __init__(
        self,
        sub_id: int,
        name: Term,
        arity: int,
        kind: str,
        pattern: Optional[Tuple[Term, ...]] = None,
        callback=None,
        capacity: int = 1024,
        owner: object = None,
        counters=None,
    ):
        self.id = sub_id
        self.name = name
        self.arity = arity
        self.kind = kind  # "edb" | "idb"
        self.predicate = f"{name}/{arity}"
        self.pattern = pattern
        self.callback = callback
        self.queue: Optional[DeliveryQueue] = (
            None if callback is not None else DeliveryQueue(capacity)
        )
        self.owner = owner
        self.active = True
        self.last_error: Optional[BaseException] = None
        #: Rows at registration time, when requested with ``snapshot=True``.
        self.snapshot_rows: Optional[List[Row]] = None
        #: Called after each queue push (server wakes its pusher here).
        self.notify_hook = None
        self._counters = counters
        self._seq_lock = threading.Lock()
        self._next_seq = 0
        self.resyncs = 0  # resync notifications this subscription received
        #: Database version of the last delivered commit (stamped on every
        #: outgoing notification; see repro.mvcc).
        self.version = 0

    @property
    def key(self) -> PredKey:
        return (self.name, self.arity)

    def _seq(self) -> int:
        with self._seq_lock:
            self._next_seq += 1
            return self._next_seq

    def _matching(self, rows: Sequence[Row]) -> List[Row]:
        if self.pattern is None:
            return list(rows)
        return [row for row in rows if match_tuple(self.pattern, row) is not None]

    def _make_resync(self, dropped: int) -> Notification:
        self.resyncs += 1
        return Notification(
            sub_id=self.id,
            seq=self._seq(),
            predicate=self.predicate,
            op=OP_RESYNC,
            txn_id=0,
            version=self.version,
            dropped=dropped,
        )

    def emit(
        self, op: str, rows: Sequence[Row], txn_id: int,
        version: Optional[int] = None,
    ) -> Optional[Notification]:
        """Filter, frame and deliver one notification; returns it, or None
        when the pattern filtered everything out."""
        if not self.active:
            return None
        if version is not None:
            self.version = version
        if op == OP_RESYNC:
            matched: Tuple[Row, ...] = ()
            self.resyncs += 1
        else:
            matched = tuple(self._matching(rows))
            if not matched:
                return None
        note = Notification(
            sub_id=self.id,
            seq=self._seq(),
            predicate=self.predicate,
            op=op,
            rows=matched,
            txn_id=txn_id,
            version=self.version,
        )
        if self._counters is not None:
            self._counters.notifications_pushed += 1
        if self.callback is not None:
            try:
                self.callback(note)
            except BaseException as exc:  # keep delivering to other subscribers
                self.last_error = exc
        else:
            self.queue.push(note, self._make_resync)
            if self.notify_hook is not None:
                self.notify_hook()
        return note

    # Embedded queue-mode convenience ---------------------------------- #

    def poll(self) -> Optional[Notification]:
        """Next buffered notification, or None (queue mode only)."""
        return self.queue.pop() if self.queue is not None else None

    def drain(self) -> List[Notification]:
        """All buffered notifications, oldest first (queue mode only)."""
        return self.queue.drain() if self.queue is not None else []


class SubscriptionManager:
    """Registers subscriptions and routes committed deltas to them.

    Serialized by design: commits are already single-writer (the server's
    write lock; the embedded single-user case), and an internal re-entrant
    lock covers registration against concurrent flushes.
    """

    def __init__(self, system, max_diff_rows: int = 100_000):
        self.system = system
        self.db = system.db
        self.max_diff_rows = max_diff_rows
        self._txn = system.enable_transactions()
        self._txn.add_observer(self)
        self._lock = threading.RLock()
        self._subs: Dict[int, Subscription] = {}
        self._by_key: Dict[PredKey, List[Subscription]] = {}
        self._next_id = 1
        self._engine = None  # the engine the delta listener is attached to
        # IDB delivery state: last-delivered extension per watched key,
        # exact repair deltas staged since the last flush, and keys whose
        # stratum was rebuilt (snapshot diff needed).
        self._snapshots: Dict[PredKey, Set[Row]] = {}
        self._staged: Dict[PredKey, List[Row]] = {}
        self._rebuilt: Set[PredKey] = set()
        # Re-entrancy: active-rule handlers mutate the database, which
        # commits, which calls back into on_commit on the same thread.
        self._dispatching = False
        self._pending: List[Tuple[int, list]] = []
        # watch declarations registered from the compiled program, keyed
        # by their subscription ids so a recompile can replace them.
        self._watch_sub_ids: List[int] = []
        self.resyncs = 0  # resync events delivered to subscribers, total

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    @property
    def subscriptions_active(self) -> int:
        with self._lock:
            return len(self._subs)

    def stats(self) -> dict:
        with self._lock:
            subs = list(self._subs.values())
        return {
            "subscriptions_active": len(subs),
            "notifications_pushed": self.db.counters.notifications_pushed,
            "resyncs": self.resyncs,
            "queued": sum(len(s.queue) for s in subs if s.queue is not None),
            "dropped": sum(s.queue.dropped for s in subs if s.queue is not None),
        }

    def _bind_engine(self):
        """(Re)attach the delta listener to the system's current engine.

        The facade rebuilds its engine whenever more source is loaded; on
        a rebind every watched IDB key is marked for a snapshot diff so
        nothing is missed across the swap.
        """
        engine = self.system.engine  # compiles on demand
        if engine is not self._engine:
            if self._engine is not None:
                self._engine.remove_delta_listener(self)
            engine.add_delta_listener(self)
            self._engine = engine
            with self._lock:
                self._staged.clear()
                for key in self._idb_keys():
                    self._rebuilt.add(key)
        return engine

    def _idb_keys(self) -> List[PredKey]:
        return [
            key
            for key, subs in self._by_key.items()
            if any(s.kind == "idb" for s in subs)
        ]

    def subscribe(
        self,
        name,
        arity: int,
        pattern: Optional[Sequence[object]] = None,
        callback=None,
        capacity: int = 1024,
        owner: object = None,
        snapshot: bool = False,
    ) -> Subscription:
        """Register interest in ``name/arity``.

        ``pattern`` optionally filters rows position by position (``None``
        positions are wildcards).  ``callback`` switches the subscription
        to synchronous delivery; otherwise notifications buffer in a
        bounded queue of ``capacity`` (overflow drops the backlog and
        leaves a ``resync`` marker -- the writer never blocks).
        ``snapshot=True`` captures the predicate's current rows into
        ``subscription.snapshot_rows``, atomically with registration, so a
        consumer can seed its replica without a race window.
        """
        name_term = name if isinstance(name, Term) else mk(name)
        lifted = None if pattern is None else _lift_pattern(pattern, arity)
        with self._lock:
            engine = self._bind_engine()
            skeleton = pred_skeleton(name_term, arity)
            kind = "idb" if engine.defines(skeleton) else "edb"
            if kind == "idb" and not engine.can_materialize(name_term, arity):
                raise GlueRuntimeError(
                    f"cannot subscribe to {name_term}/{arity}: the predicate "
                    "is not materializable (it needs demand bindings)"
                )
            sub = Subscription(
                self._next_id,
                name_term,
                arity,
                kind,
                pattern=lifted,
                callback=callback,
                capacity=capacity,
                owner=owner,
                counters=self.db.counters,
            )
            self._next_id += 1
            self._subs[sub.id] = sub
            self._by_key.setdefault(sub.key, []).append(sub)
            if kind == "idb" and sub.key not in self._snapshots:
                relation = engine.materialize(name_term, arity)
                self._snapshots[sub.key] = set(relation.rows())
                self._staged.pop(sub.key, None)
                self._rebuilt.discard(sub.key)
            if snapshot:
                if kind == "idb":
                    sub.snapshot_rows = sorted(self._snapshots[sub.key], key=_row_key)
                else:
                    relation = self.db.get(name_term, arity)
                    sub.snapshot_rows = (
                        relation.sorted_rows() if relation is not None else []
                    )
            if self.db.tracer.enabled:
                self.db.tracer.event(
                    "subscription",
                    sub.predicate,
                    action="subscribe",
                    sub=sub.id,
                    kind=kind,
                )
        return sub

    def unsubscribe(self, sub_or_id) -> bool:
        """Deactivate and forget a subscription; True if it was live."""
        sub_id = sub_or_id.id if isinstance(sub_or_id, Subscription) else sub_or_id
        with self._lock:
            sub = self._subs.pop(sub_id, None)
            if sub is None:
                return False
            sub.active = False
            peers = self._by_key.get(sub.key)
            if peers is not None:
                peers = [s for s in peers if s.id != sub_id]
                if peers:
                    self._by_key[sub.key] = peers
                else:
                    del self._by_key[sub.key]
                    # Last subscriber on this key: drop the IDB bookkeeping.
                    self._snapshots.pop(sub.key, None)
                    self._staged.pop(sub.key, None)
                    self._rebuilt.discard(sub.key)
            if self.db.tracer.enabled:
                self.db.tracer.event(
                    "subscription", sub.predicate, action="unsubscribe", sub=sub_id
                )
            return True

    def unsubscribe_owner(self, owner: object) -> int:
        """Remove every subscription registered under ``owner`` (server
        session disconnect); returns how many were removed."""
        with self._lock:
            doomed = [s.id for s in self._subs.values() if s.owner is owner]
        for sub_id in doomed:
            self.unsubscribe(sub_id)
        return len(doomed)

    def close(self) -> None:
        """Detach from the transaction manager and the engine."""
        self._txn.remove_observer(self)
        if self._engine is not None:
            self._engine.remove_delta_listener(self)
            self._engine = None

    # ------------------------------------------------------------------ #
    # watch declarations (Glue-level active rules)
    # ------------------------------------------------------------------ #

    def set_watch_rules(self, decls) -> None:
        """Install the program's ``watch`` declarations, replacing any from
        a previous compile.  Each becomes a callback subscription whose
        sink calls the named Glue procedure with ``(op, row...)`` tuples.
        """
        for sub_id in self._watch_sub_ids:
            self.unsubscribe(sub_id)
        self._watch_sub_ids = []
        for decl in decls:
            sub = self._register_watch(decl)
            self._watch_sub_ids.append(sub.id)

    def _register_watch(self, decl) -> Subscription:
        arity = len(decl.args)
        compiled = self.system.compile()
        # Resolve the handler now so a bad watch fails at load, not at the
        # first commit.  The handler sees (op, row...): bound arity + 1.
        candidates = sorted(
            {
                key[2]
                for key in compiled.procs
                if key[1] == decl.proc and (decl.module is None or key[0] == decl.module)
            }
        )
        if not candidates:
            where = f" in module {decl.module}" if decl.module else ""
            raise GlueRuntimeError(
                f"watch {decl.pred}/{arity}: no procedure named {decl.proc}{where}"
            )
        proc = None
        for cand in candidates:
            attempt = compiled.find_proc(decl.proc, cand, module=decl.module)
            if attempt.bound_arity == arity + 1:
                proc = attempt
                break
        if proc is None:
            raise GlueRuntimeError(
                f"watch {decl.pred}/{arity}: handler {decl.proc} must take "
                f"{arity + 1} bound arguments (op, row...)"
            )

        def run_handler(note: Notification) -> None:
            if note.op == OP_RESYNC:
                if self.db.tracer.enabled:
                    self.db.tracer.event(
                        "subscription", note.predicate, action="watch_resync"
                    )
                return
            op_atom = Atom(note.op)
            inputs = [(op_atom,) + row for row in note.rows]
            self.system.call(
                proc.name, inputs, module=proc.module, arity=proc.arity
            )

        # The head arguments double as the pattern filter: ground positions
        # must match, variables are wildcards.
        pattern = None if all(isinstance(a, Var) for a in decl.args) else decl.args
        return self.subscribe(
            decl.pred, arity, pattern=pattern, callback=run_handler, owner="watch"
        )

    # ------------------------------------------------------------------ #
    # engine delta-listener interface
    # ------------------------------------------------------------------ #

    def on_idb_delta(self, key: PredKey, rows: List[Row]) -> None:
        """Exact repair inserts from ``incremental_eval`` (via the engine)."""
        with self._lock:
            if key in self._snapshots and key not in self._rebuilt:
                self._staged.setdefault(key, []).extend(rows)

    def on_idb_rebuild(self, skeletons) -> None:
        """A stratum was invalidated instead of repaired: exact deltas are
        lost for its predicates; fall back to snapshot diffing."""
        with self._lock:
            for key in list(self._snapshots):
                if pred_skeleton(key[0], key[1]) in skeletons:
                    self._rebuilt.add(key)
                    self._staged.pop(key, None)

    # ------------------------------------------------------------------ #
    # commit observer interface (TransactionManager)
    # ------------------------------------------------------------------ #

    def on_commit(self, txn_id: int, ops: list) -> None:
        """Flush one committed batch to subscribers.

        Runs on the committing thread, after the transaction state is torn
        down.  Active-rule handlers may commit further batches; those queue
        up and drain iteratively (bounded by :data:`MAX_CASCADE`).
        """
        with self._lock:
            if not self._subs:
                return
            if self._dispatching:
                self._pending.append((txn_id, ops))
                return
            self._dispatching = True
        try:
            batches = [(txn_id, ops)]
            rounds = 0
            while batches:
                rounds += 1
                if rounds > MAX_CASCADE:
                    raise GlueRuntimeError(
                        f"watch cascade exceeded {MAX_CASCADE} rounds; "
                        "active rules appear to feed themselves"
                    )
                tid, batch = batches.pop(0)
                with self._lock:
                    self._flush(tid, batch)
                with self._lock:
                    batches.extend(self._pending)
                    self._pending.clear()
        finally:
            with self._lock:
                self._dispatching = False
                self._pending.clear()

    # ------------------------------------------------------------------ #
    # delivery
    # ------------------------------------------------------------------ #

    @staticmethod
    def _net_batch(ops: list):
        """Net a committed batch per predicate, ChangeLog-style: track the
        first and last op kind per row; insert-then-delete (and
        delete-then-insert) pairs cancel."""
        marks: Dict[PredKey, Dict[Row, List[str]]] = {}
        dropped: List[PredKey] = []
        for op in ops:
            kind = op[0]
            if kind == "drop":
                key = (op[1], op[2])
                if key not in dropped:
                    dropped.append(key)
                marks.pop(key, None)
                continue
            row = op[2]
            key = (op[1], len(row))
            per_row = marks.setdefault(key, {})
            mark = per_row.get(row)
            if mark is None:
                per_row[row] = [kind, kind]
            else:
                mark[1] = kind
        nets: Dict[PredKey, Tuple[List[Row], List[Row]]] = {}
        for key, per_row in marks.items():
            inserted: List[Row] = []
            deleted: List[Row] = []
            for row, (first, last) in per_row.items():
                if first == last:
                    (inserted if last == "insert" else deleted).append(row)
                # first != last: net zero either way.
            if inserted or deleted:
                nets[key] = (inserted, deleted)
        return nets, dropped

    def _flush(self, txn_id: int, ops: list) -> None:
        """Deliver one committed batch: EDB nets first, then IDB deltas.

        Every notification is stamped with the database version of the
        committed state (the version a write window publishes, since the
        flush runs after the batch's last mutation): a snapshot reader
        pinned at notification ``version`` sees exactly the rows these
        deltas produce.
        """
        version = self.db.version
        nets, dropped = self._net_batch(ops)
        for key in dropped:
            for sub in self._by_key.get(key, []):
                if sub.kind == "edb":
                    self.resyncs += 1
                    sub.emit(OP_RESYNC, (), txn_id, version=version)
        for key, (inserted, deleted) in nets.items():
            for sub in self._by_key.get(key, []):
                if sub.kind != "edb":
                    continue
                if inserted:
                    sub.emit(OP_INSERT, inserted, txn_id, version=version)
                if deleted:
                    sub.emit(OP_DELETE, deleted, txn_id, version=version)
        self._flush_idb(txn_id, version)

    def _flush_idb(self, txn_id: int, version: Optional[int] = None) -> None:
        idb_keys = self._idb_keys()
        if not idb_keys:
            return
        engine = self._bind_engine()
        # Materializing pulls the committed EDB state through the engine's
        # refresh: repairs stage exact deltas, rebuilds mark keys below.
        for key in idb_keys:
            engine.materialize(key[0], key[1])
        staged, rebuilt = self._staged, self._rebuilt
        self._staged, self._rebuilt = {}, set()
        for key in idb_keys:
            subs = [s for s in self._by_key.get(key, []) if s.kind == "idb"]
            if not subs:
                continue
            old = self._snapshots.get(key, set())
            if key in rebuilt:
                relation = engine.idb.get(key[0], key[1])
                new = set(relation.rows()) if relation is not None else set()
                if len(old) + len(new) > self.max_diff_rows:
                    self._snapshots[key] = new
                    for sub in subs:
                        self.resyncs += 1
                        sub.emit(OP_RESYNC, (), txn_id, version=version)
                    if self.db.tracer.enabled:
                        self.db.tracer.event(
                            "subscription",
                            f"{key[0]}/{key[1]}",
                            action="resync",
                            reason="diff_too_large",
                        )
                    continue
                inserted = sorted(new - old, key=_row_key)
                deleted = sorted(old - new, key=_row_key)
                self._snapshots[key] = new
            else:
                rows = staged.get(key)
                if not rows:
                    continue
                # Exact repair inserts; dedupe defensively against the
                # snapshot (repair deltas are genuinely-new by contract).
                fresh: List[Row] = []
                seen: Set[Row] = set()
                for row in rows:
                    if row not in old and row not in seen:
                        seen.add(row)
                        fresh.append(row)
                inserted, deleted = fresh, []
                old.update(fresh)
                self._snapshots[key] = old
            for sub in subs:
                if deleted:
                    sub.emit(OP_DELETE, deleted, txn_id, version=version)
                if inserted:
                    sub.emit(OP_INSERT, inserted, txn_id, version=version)
