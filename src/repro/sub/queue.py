"""Delivery primitives for push-based subscriptions.

A :class:`Notification` is one framed unit of change for one
subscription: the predicate, the operation (``insert``/``delete``/
``resync``), the affected rows (as Term tuples), the id of the committed
transaction that produced them, and a per-subscription monotone sequence
number.

A :class:`DeliveryQueue` is the bounded mailbox between the committing
writer and a (possibly slow) consumer.  The writer never blocks: when the
queue is full, everything buffered is dropped and replaced by a single
``resync`` marker telling the consumer to re-read the predicate's current
extension before trusting further deltas.  Sequence numbers keep
advancing across the drop, so a consumer can detect the gap.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.terms.term import Term

Row = Tuple[Term, ...]

#: Notification operations.
OP_INSERT = "insert"
OP_DELETE = "delete"
OP_RESYNC = "resync"


@dataclass(frozen=True)
class Notification:
    """One unit of pushed change for one subscription."""

    sub_id: int
    seq: int
    predicate: str  # "name/arity"
    op: str  # OP_INSERT | OP_DELETE | OP_RESYNC
    rows: Tuple[Row, ...] = ()
    txn_id: int = 0
    #: The database version the producing commit published (see
    #: repro.mvcc): a subscriber and a snapshot reader pinned at the same
    #: version agree exactly on what this notification's deltas apply to.
    version: int = 0
    #: For resync markers produced by queue overflow: how many buffered
    #: notifications were discarded to make room.
    dropped: int = 0
    extra: dict = field(default_factory=dict, compare=False)

    def payload(self) -> dict:
        """The JSON-able wire shape (rows still as Terms; the server maps
        them through :func:`repro.server.protocol.rows_to_python`)."""
        return {
            "sub": self.sub_id,
            "seq": self.seq,
            "predicate": self.predicate,
            "op": self.op,
            "txn": self.txn_id,
            "version": self.version,
            "dropped": self.dropped,
        }


class DeliveryQueue:
    """Bounded, thread-safe notification mailbox with drop-with-resync.

    ``push`` is what the committing writer calls; it never blocks.  On
    overflow the whole backlog is replaced with one resync marker built by
    the ``make_resync(dropped_count)`` callback (the owning subscription
    supplies it so the marker gets the next sequence number).
    """

    def __init__(self, capacity: int = 1024):
        self.capacity = max(1, int(capacity))
        self._items: deque = deque()
        self._lock = threading.Lock()
        self.dropped = 0  # notifications discarded by overflow, lifetime

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def push(
        self,
        item: Notification,
        make_resync: Callable[[int], Notification],
    ) -> bool:
        """Enqueue ``item``; on overflow swap the backlog for a resync
        marker.  Returns False when the item was dropped."""
        with self._lock:
            if len(self._items) >= self.capacity:
                lost = len(self._items) + 1  # the backlog plus this item
                self._items.clear()
                self.dropped += lost
                self._items.append(make_resync(lost))
                return False
            self._items.append(item)
            return True

    def pop(self) -> Optional[Notification]:
        with self._lock:
            if self._items:
                return self._items.popleft()
            return None

    def drain(self) -> List[Notification]:
        """Take everything currently buffered, oldest first."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            return items
