"""Continuous queries: push-based subscriptions over the delta pipeline.

See :mod:`repro.sub.manager` for the design and ``docs/SUBSCRIPTIONS.md``
for the user-facing guarantees.
"""

from repro.sub.manager import MAX_CASCADE, Subscription, SubscriptionManager
from repro.sub.queue import (
    OP_DELETE,
    OP_INSERT,
    OP_RESYNC,
    DeliveryQueue,
    Notification,
)

__all__ = [
    "DeliveryQueue",
    "MAX_CASCADE",
    "Notification",
    "OP_DELETE",
    "OP_INSERT",
    "OP_RESYNC",
    "Subscription",
    "SubscriptionManager",
]
