"""Subgoal reordering (paper Section 3.1).

    "A Glue system is free to reorder the non-fixed subgoals, although
    procedures must still have their input arguments bound, and subgoals
    cannot be moved past an aggregator."

The optimizer splits the body into segments delimited by fixed subgoals
(which keep their positions) and greedily orders each segment: filters that
are already evaluable come first, then the scan whose arguments are most
bound.  The heuristic is deterministic; ties break on source order.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set

from repro.analysis.bindings import (
    BindingError,
    check_subgoal_safety,
    subgoal_binds,
    term_vars,
    terms_vars,
)
from repro.analysis.fixedness import CallFixedness, is_fixed_subgoal
from repro.lang.ast import CompareSubgoal, EmptyCond, PredSubgoal

# Returns the bound arity of a callable subgoal, or None for relations.
CallBoundArity = Callable[[PredSubgoal], Optional[int]]


def _never_callable(_subgoal: PredSubgoal) -> Optional[int]:
    return None


def _admissible(subgoal, bound: Set[str], call_bound_arity: CallBoundArity) -> bool:
    try:
        check_subgoal_safety(subgoal, bound)
    except BindingError:
        return False
    if isinstance(subgoal, PredSubgoal) and not subgoal.negated:
        bound_arity = call_bound_arity(subgoal)
        if bound_arity is not None:
            inputs = subgoal.args[:bound_arity]
            if terms_vars(inputs) - bound:
                return False
    return True


# Estimates the current cardinality of a subgoal's relation, or None when
# unknown (procedures, predicate variables, derived predicates).  Supplied
# by the adaptive run-time re-optimizer (paper Section 10).
SizeOf = Callable[[PredSubgoal], Optional[int]]


def _no_sizes(_subgoal: PredSubgoal) -> Optional[int]:
    return None


def _score(subgoal, bound: Set[str], size_of: SizeOf = _no_sizes) -> tuple:
    """Lower scores run earlier.  Filters (no new bindings) first, then
    negations, then scans -- by estimated result size when cardinalities
    are known, by descending bound-argument ratio otherwise."""
    if isinstance(subgoal, (CompareSubgoal, EmptyCond)):
        return (0, 0.0)
    if isinstance(subgoal, PredSubgoal):
        if subgoal.negated:
            return (1, 0.0)
        if not subgoal.args:
            return (2, 0.0)
        bound_args = sum(1 for arg in subgoal.args if not (term_vars(arg) - bound))
        unbound_ratio = 1.0 - bound_args / len(subgoal.args)
        size = size_of(subgoal)
        if size is not None:
            # Crude selectivity model: a bound argument divides the
            # relation's contribution; fully bound ~ O(1) lookups.
            estimate = size * (unbound_ratio ** 2) if size else 0.0
            return (2, estimate)
        return (2, unbound_ratio)
    return (3, 0.0)


def reorder_body(
    body: Sequence[object],
    initially_bound: Set[str] = frozenset(),
    call_fixedness: CallFixedness = lambda s: None,
    call_bound_arity: CallBoundArity = _never_callable,
    size_of: SizeOf = _no_sizes,
) -> List[object]:
    """Reorder the non-fixed subgoals of a body; fixed subgoals stay put.

    If the greedy schedule gets stuck (no admissible subgoal), the original
    order of the remaining subgoals is preserved -- the later safety check
    in the compiler reports the real error with source positions.
    """
    result: List[object] = []
    bound: Set[str] = set(initially_bound)
    segment: List[tuple] = []  # (source_index, subgoal)

    def flush_segment() -> None:
        nonlocal bound
        pending = list(segment)
        segment.clear()
        while pending:
            best = None
            for entry in pending:
                if not _admissible(entry[1], bound, call_bound_arity):
                    continue
                key = (_score(entry[1], bound, size_of), entry[0])
                if best is None or key < best[0]:
                    best = (key, entry)
            if best is None:
                # Stuck: emit the remainder in source order.
                for entry in pending:
                    result.append(entry[1])
                    bound |= subgoal_binds(entry[1], bound)
                return
            _, entry = best
            pending.remove(entry)
            result.append(entry[1])
            bound |= subgoal_binds(entry[1], bound)

    for index, subgoal in enumerate(body):
        if is_fixed_subgoal(subgoal, call_fixedness):
            flush_segment()
            result.append(subgoal)
            bound |= subgoal_binds(subgoal, bound)
        else:
            segment.append((index, subgoal))
    flush_segment()
    return result
