"""Compile-time analyses (paper Sections 2, 3.1, 6, 9).

The Glue compiler's stated aim is "to do as much as possible at compile
time": resolving which predicate class a subgoal refers to (EDB relation,
local relation, NAIL! predicate, Glue procedure, builtin), determining when
variables become bound, identifying *fixed* subgoals that may not be
reordered, and reordering the remaining subgoals.
"""

from repro.analysis.scope import (
    PredClass,
    PredInfo,
    ScopeError,
    pred_skeleton,
)
from repro.analysis.bindings import BindingError, analyze_bindings, expr_vars, term_vars
from repro.analysis.fixedness import is_fixed_subgoal
from repro.analysis.reorder import reorder_body
from repro.analysis.depgraph import DependencyGraph, build_dependency_graph
from repro.analysis.stratify import StratificationError, stratify

__all__ = [
    "BindingError",
    "DependencyGraph",
    "PredClass",
    "PredInfo",
    "ScopeError",
    "StratificationError",
    "analyze_bindings",
    "build_dependency_graph",
    "expr_vars",
    "is_fixed_subgoal",
    "pred_skeleton",
    "reorder_body",
    "stratify",
    "term_vars",
]
