"""Fixed-subgoal analysis (paper Section 3.1).

    "A fixed subgoal is either an EDB updating subgoal, a group_by, an
    aggregator, or a call to a Glue procedure which is known to be fixed.
    A Glue procedure is fixed if it contains a fixed subgoal.  The
    predefined I/O procedures are all fixed."

Fixed subgoals anchor the left-to-right evaluation order: the optimizer may
reorder only the non-fixed subgoals between them, and no subgoal may move
past an aggregator.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analysis.bindings import expr_has_agg
from repro.lang.ast import (
    AssignStmt,
    CompareSubgoal,
    EmptyCond,
    GroupBySubgoal,
    PredSubgoal,
    ProcDecl,
    RepeatStmt,
    UnchangedCond,
    UnionSubgoal,
    UpdateSubgoal,
)

# Resolves a PredSubgoal to True (fixed call), False (not fixed), or None
# (not a call at all -- a plain relation/NAIL subgoal).
CallFixedness = Callable[[PredSubgoal], Optional[bool]]


def _never_a_call(_subgoal: PredSubgoal) -> Optional[bool]:
    return None


def is_fixed_subgoal(subgoal, call_fixedness: CallFixedness = _never_a_call) -> bool:
    """Is this subgoal fixed (immovable, side-effecting or aggregating)?"""
    if isinstance(subgoal, UpdateSubgoal):
        return True
    if isinstance(subgoal, GroupBySubgoal):
        return True
    if isinstance(subgoal, CompareSubgoal):
        return expr_has_agg(subgoal.left) or expr_has_agg(subgoal.right)
    if isinstance(subgoal, UnchangedCond):
        # unchanged() reads mutable history; its position matters.
        return True
    if isinstance(subgoal, EmptyCond):
        return False
    if isinstance(subgoal, PredSubgoal):
        resolved = call_fixedness(subgoal)
        return bool(resolved)
    if isinstance(subgoal, UnionSubgoal):
        return any(
            is_fixed_subgoal(inner, call_fixedness)
            for alt in subgoal.alternatives
            for inner in alt
        )
    return False


def is_aggregating_subgoal(subgoal) -> bool:
    """Aggregators are a hard barrier: subgoals cannot move past them in
    *either* direction (they change the meaning of the supplementary set)."""
    if isinstance(subgoal, CompareSubgoal):
        return expr_has_agg(subgoal.left) or expr_has_agg(subgoal.right)
    return isinstance(subgoal, GroupBySubgoal)


def stmt_is_fixed(stmt, call_fixedness: CallFixedness = _never_a_call) -> bool:
    if isinstance(stmt, AssignStmt):
        return any(is_fixed_subgoal(s, call_fixedness) for s in stmt.body)
    if isinstance(stmt, RepeatStmt):
        if any(stmt_is_fixed(inner, call_fixedness) for inner in stmt.body):
            return True
        return any(
            is_fixed_subgoal(s, call_fixedness)
            for alt in stmt.until.alternatives
            for s in alt
        )
    raise TypeError(f"not a statement: {stmt!r}")


def proc_is_fixed(proc: ProcDecl, call_fixedness: CallFixedness = _never_a_call) -> bool:
    """A procedure is fixed if it contains a fixed subgoal.

    Note: any assignment to a non-local relation is an EDB update, so the
    caller's ``call_fixedness`` should be combined with a head-target check;
    :mod:`repro.vm.compiler` does this during program compilation.
    """
    return any(stmt_is_fixed(stmt, call_fixedness) for stmt in proc.body)
