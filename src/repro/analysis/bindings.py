"""Binding-time analysis (paper Sections 2 and 9).

Because relations hold only ground tuples, the compiler can know exactly
when each variable in an assignment statement becomes bound.  This module
walks a body left to right and computes, for each subgoal, the set of
variables bound *before* it and the set it binds; it also enforces the
safety rules (negated subgoals, comparisons, updates and aggregate
arguments must be over bound variables; procedure inputs must be bound).
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from repro.lang.ast import (
    AggCall,
    BinOp,
    CompareSubgoal,
    EmptyCond,
    FunCall,
    GroupBySubgoal,
    PredSubgoal,
    UnaryOp,
    UnchangedCond,
    UnionSubgoal,
    UpdateSubgoal,
)
from repro.terms.term import Term, Var, variables


from repro.errors import CompileError


class BindingError(CompileError):
    """A safety violation: an operation over variables not yet bound."""


def term_vars(term: Term) -> Set[str]:
    """Named (non-anonymous) variables in a term."""
    return {v.name for v in variables(term) if not v.is_anonymous}


def terms_vars(terms: Iterable[Term]) -> Set[str]:
    out: Set[str] = set()
    for term in terms:
        out |= term_vars(term)
    return out


def expr_vars(expr) -> Set[str]:
    """Named variables in an expression tree (aggregator args included)."""
    if isinstance(expr, Term):
        return term_vars(expr)
    if isinstance(expr, BinOp):
        return expr_vars(expr.left) | expr_vars(expr.right)
    if isinstance(expr, UnaryOp):
        return expr_vars(expr.operand)
    if isinstance(expr, FunCall):
        out: Set[str] = set()
        for arg in expr.args:
            out |= expr_vars(arg)
        return out
    if isinstance(expr, AggCall):
        return expr_vars(expr.arg)
    raise TypeError(f"not an expression: {expr!r}")


def expr_has_agg(expr) -> bool:
    if isinstance(expr, AggCall):
        return True
    if isinstance(expr, BinOp):
        return expr_has_agg(expr.left) or expr_has_agg(expr.right)
    if isinstance(expr, UnaryOp):
        return expr_has_agg(expr.operand)
    if isinstance(expr, FunCall):
        return any(expr_has_agg(a) for a in expr.args)
    return False


def subgoal_binds(subgoal, bound: Set[str], callable_sigs=None) -> Set[str]:
    """Variables the subgoal adds to the bound set, given those already bound.

    ``callable_sigs`` maps a PredSubgoal (by identity) to its bound arity
    when the subgoal is a procedure call; positional: the first
    ``bound_arity`` arguments are inputs, the rest outputs.
    """
    if isinstance(subgoal, PredSubgoal):
        if subgoal.negated:
            return set()
        return terms_vars(subgoal.args) | term_vars(subgoal.pred)
    if isinstance(subgoal, CompareSubgoal):
        if subgoal.op == "=" and isinstance(subgoal.left, Var):
            if subgoal.left.name not in bound and not subgoal.left.is_anonymous:
                return {subgoal.left.name}
        if subgoal.op == "=" and isinstance(subgoal.right, Var):
            if subgoal.right.name not in bound and not subgoal.right.is_anonymous:
                return {subgoal.right.name}
        return set()
    if isinstance(subgoal, UnionSubgoal):
        # All alternatives bind the same new variables (enforced by
        # check_subgoal_safety); any alternative's bindings will do.
        out: Set[str] = set(bound)
        for inner in subgoal.alternatives[0]:
            out |= subgoal_binds(inner, out)
        return out - set(bound)
    return set()


def check_subgoal_safety(subgoal, bound: Set[str]) -> None:
    """Raise :class:`BindingError` if the subgoal is unsafe at this point."""
    if isinstance(subgoal, PredSubgoal):
        if subgoal.negated:
            free = (terms_vars(subgoal.args) | term_vars(subgoal.pred)) - bound
            if free:
                raise BindingError(
                    f"negated subgoal !{subgoal.pred} uses unbound variables {sorted(free)}"
                )
        pred_free = term_vars(subgoal.pred) - bound
        if pred_free and not subgoal.negated:
            # A predicate-variable subgoal needs its name bound first.
            raise BindingError(
                f"predicate variable {sorted(pred_free)} must be bound before use"
            )
        return
    if isinstance(subgoal, CompareSubgoal):
        left_free = expr_vars(subgoal.left) - bound
        right_free = expr_vars(subgoal.right) - bound
        if subgoal.op == "=":
            if isinstance(subgoal.left, Var) and subgoal.left.name in left_free:
                left_free = set()
            elif isinstance(subgoal.right, Var) and subgoal.right.name in right_free:
                right_free = set()
        free = left_free | right_free
        if free:
            raise BindingError(
                f"comparison '{subgoal.op}' uses unbound variables {sorted(free)}"
            )
        return
    if isinstance(subgoal, UpdateSubgoal):
        free = (terms_vars(subgoal.args) | term_vars(subgoal.pred)) - bound
        if free:
            raise BindingError(
                f"update subgoal {subgoal.op}{subgoal.pred} uses unbound variables "
                f"{sorted(free)}"
            )
        return
    if isinstance(subgoal, GroupBySubgoal):
        free = terms_vars(subgoal.terms) - bound
        if free:
            raise BindingError(f"group_by over unbound variables {sorted(free)}")
        for term in subgoal.terms:
            if not isinstance(term, Var):
                raise BindingError("group_by arguments must be variables")
        return
    if isinstance(subgoal, (UnchangedCond, EmptyCond)):
        return
    if isinstance(subgoal, UnionSubgoal):
        if not subgoal.alternatives:
            raise BindingError("empty body disjunction")
        binding_sets = []
        for alt in subgoal.alternatives:
            inner_bound = set(bound)
            for inner in alt:
                check_subgoal_safety(inner, inner_bound)
                inner_bound |= subgoal_binds(inner, inner_bound)
            binding_sets.append(inner_bound - set(bound))
        if any(b != binding_sets[0] for b in binding_sets[1:]):
            raise BindingError(
                "every alternative of a body disjunction must bind the same "
                f"variables; got {sorted(map(sorted, binding_sets))}"
            )
        return
    raise TypeError(f"not a subgoal: {subgoal!r}")


def analyze_bindings(
    body: Iterable[object], initially_bound: Set[str] = frozenset()
) -> List[Tuple[Set[str], Set[str]]]:
    """For each subgoal, the (bound-before, newly-bound) variable sets.

    Raises :class:`BindingError` on the first safety violation.  This is
    the supplementary-relation column calculation of paper Section 3.2:
    the columns of sup_i are the columns of sup_{i-1} plus the variables of
    subgoal i.
    """
    bound: Set[str] = set(initially_bound)
    out: List[Tuple[Set[str], Set[str]]] = []
    for subgoal in body:
        check_subgoal_safety(subgoal, bound)
        new = subgoal_binds(subgoal, bound) - bound
        out.append((set(bound), new))
        bound |= new
    return out
