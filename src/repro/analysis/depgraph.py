"""The predicate dependency graph of a NAIL! rule set.

Nodes are predicate skeletons; there is an edge from the head's skeleton to
each body predicate's skeleton, marked negative when the body literal is
negated or separated by aggregation (aggregate values must be complete
before they are read, so they stratify exactly like negation -- the choice
LDL and CORAL also make, paper Section 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

import networkx as nx

from repro.analysis.bindings import expr_has_agg
from repro.analysis.scope import Skeleton, pred_skeleton
from repro.lang.ast import CompareSubgoal, PredSubgoal, RuleDecl


@dataclass
class DependencyGraph:
    graph: nx.DiGraph
    rules_by_head: Dict[Skeleton, List[RuleDecl]] = field(default_factory=dict)

    def sccs(self) -> List[Set[Skeleton]]:
        """Strongly connected components in dependency (topological) order:
        earlier components do not depend on later ones."""
        condensation = nx.condensation(self.graph)
        order = list(nx.topological_sort(condensation))
        # condensation edges point from a node to its dependencies (we add
        # head -> body edges), so dependencies come *later* in a forward
        # topological order; reverse to evaluate bottom-up.
        order.reverse()
        return [set(condensation.nodes[c]["members"]) for c in order]

    def negative_edges(self) -> List[Tuple[Skeleton, Skeleton]]:
        return [
            (u, v)
            for u, v, data in self.graph.edges(data=True)
            if data.get("negative", False)
        ]

    def idb_skeletons(self) -> Set[Skeleton]:
        return set(self.rules_by_head)


def rule_body_dependencies(rule: RuleDecl) -> List[Tuple[Skeleton, bool]]:
    """(skeleton, negative?) for each predicate literal in the rule body.

    A predicate-variable subgoal has skeleton base ``None``; callers decide
    how to close over the candidate set.  A rule containing any aggregate
    comparison makes *all* its body dependencies negative: the aggregate
    needs the complete extension of everything it ranges over.
    """
    has_agg = any(
        isinstance(s, CompareSubgoal) and (expr_has_agg(s.left) or expr_has_agg(s.right))
        for s in rule.body
    )
    out: List[Tuple[Skeleton, bool]] = []
    for subgoal in rule.body:
        if not isinstance(subgoal, PredSubgoal):
            continue
        skeleton = pred_skeleton(subgoal.pred, len(subgoal.args))
        out.append((skeleton, subgoal.negated or has_agg))
    return out


def build_dependency_graph(rules: Iterable[RuleDecl]) -> DependencyGraph:
    graph = nx.DiGraph()
    rules_by_head: Dict[Skeleton, List[RuleDecl]] = {}
    rules = list(rules)
    for rule in rules:
        head = pred_skeleton(rule.head_pred, len(rule.head_args))
        rules_by_head.setdefault(head, []).append(rule)
        graph.add_node(head)
    for rule in rules:
        head = pred_skeleton(rule.head_pred, len(rule.head_args))
        for skeleton, negative in rule_body_dependencies(rule):
            if skeleton[0] is None:
                # Predicate variable: it may only range over EDB relations
                # (checked by the engine), which are never IDB nodes, so it
                # adds no graph edge.
                continue
            if graph.has_edge(head, skeleton):
                if negative:
                    graph[head][skeleton]["negative"] = True
            else:
                graph.add_edge(head, skeleton, negative=negative)
    return DependencyGraph(graph=graph, rules_by_head=rules_by_head)
