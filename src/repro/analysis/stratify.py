"""Stratification of NAIL! rule sets.

Glue-Nail, like LDL and CORAL, evaluates negation (and aggregation, which
stratifies identically) stratum by stratum: a program is stratified when no
predicate depends negatively on itself through any cycle.  The strata are
the strongly connected components of the dependency graph in bottom-up
topological order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

from repro.analysis.depgraph import DependencyGraph
from repro.analysis.scope import Skeleton


from repro.errors import CompileError


class StratificationError(CompileError):
    """The rule set has a negative (or aggregate) dependency inside a cycle."""


@dataclass(frozen=True)
class Stratum:
    """One evaluation unit: a set of mutually recursive IDB predicates."""

    index: int
    skeletons: frozenset

    @property
    def is_recursive_component(self) -> bool:
        return len(self.skeletons) > 1


def stratify(dep: DependencyGraph) -> List[Stratum]:
    """Split the IDB into bottom-up strata; raise if not stratified.

    Only IDB skeletons (those with rules) appear in strata; EDB leaves are
    stratum-less inputs.  A single-node component counts as recursive when
    it has a self-loop.
    """
    idb = dep.idb_skeletons()
    negative = set(dep.negative_edges())
    components = dep.sccs()

    # Index of the component containing each skeleton.
    component_of = {}
    for idx, members in enumerate(components):
        for skeleton in members:
            component_of[skeleton] = idx

    for u, v in negative:
        if component_of.get(u) == component_of.get(v) and v in idb:
            raise StratificationError(
                f"not stratified: {u} depends negatively on {v} inside a cycle"
            )

    strata: List[Stratum] = []
    for members in components:
        idb_members = frozenset(m for m in members if m in idb)
        if idb_members:
            strata.append(Stratum(index=len(strata), skeletons=idb_members))
    return strata


def component_is_recursive(dep: DependencyGraph, skeletons: Sequence[Skeleton]) -> bool:
    """True when the component needs fixpoint iteration: more than one
    member, or a member with a self-edge."""
    members: Set[Skeleton] = set(skeletons)
    if len(members) > 1:
        return True
    (only,) = members
    return dep.graph.has_edge(only, only)
