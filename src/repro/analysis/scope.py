"""Predicate classes and lexical scope (paper Sections 2, 6, 9).

Every subgoal name belongs to one of four predicate classes -- EDB
relation, local relation, NAIL! predicate, or Glue procedure (plus builtins
and foreign procedures in this implementation).  The compiler resolves the
class of every statically-known name, and narrows the candidate set for
predicate-variable subgoals, at compile time: "it is very important to
identify at compile time those subgoals which cannot possibly be procedure
calls."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, List, Optional, Tuple

from repro.terms.term import Atom, Compound, Term, Var


from repro.errors import CompileError


class ScopeError(CompileError):
    """A name-resolution error (undeclared predicate in strict mode,
    conflicting declarations, assignment to a read-only class, ...)."""


class PredClass(Enum):
    EDB = auto()        # extensional relation, persistent
    LOCAL = auto()      # procedure-local relation (fresh per invocation)
    NAIL = auto()       # NAIL! predicate: IDB, derived on demand
    PROC = auto()       # Glue procedure
    BUILTIN = auto()    # built-in procedure (I/O etc.)
    FOREIGN = auto()    # foreign (Python) procedure
    SPECIAL = auto()    # the in/return relations of the enclosing procedure


Skeleton = Tuple[Optional[str], Tuple[int, ...], int]


def pred_skeleton(pred: Term, arity: int) -> Skeleton:
    """The compile-time identity of a predicate reference.

    A predicate name may be a compound term (HiLog); its *skeleton* is the
    base atom plus the chain of application arities.  Examples::

        p/2                 -> ("p", (), 2)
        students(ID)/1      -> ("students", (1,), 1)
        X/2 (pred variable) -> (None, (), 2)
    """
    chain: List[int] = []
    term = pred
    while isinstance(term, Compound):
        chain.append(len(term.args))
        term = term.functor
    chain.reverse()
    if isinstance(term, Atom):
        return (term.name, tuple(chain), arity)
    if isinstance(term, Var):
        return (None, tuple(chain), arity)
    raise ScopeError(f"bad predicate name: {pred}")


@dataclass(frozen=True)
class PredInfo:
    """Everything the compiler knows about one predicate."""

    skeleton: Skeleton
    klass: PredClass
    arity: int
    bound_arity: int = 0           # for PROC/BUILTIN/FOREIGN: input arity
    module: Optional[str] = None   # defining module
    fixed: bool = False            # has side effects / aggregation
    display: str = ""              # human-readable name for messages

    @property
    def is_callable(self) -> bool:
        return self.klass in (PredClass.PROC, PredClass.BUILTIN, PredClass.FOREIGN)

    @property
    def is_relation(self) -> bool:
        return self.klass in (PredClass.EDB, PredClass.LOCAL, PredClass.SPECIAL)


@dataclass
class Scope:
    """A lexical scope: module level, with one child level per procedure.

    "Declarations of local relations 'hide' the declarations of other
    predicates with which they unify" (paper Section 4), hence the parent
    chain with innermost-first lookup.
    """

    module: Optional[str] = None
    parent: Optional["Scope"] = None
    strict: bool = False
    _table: Dict[Skeleton, PredInfo] = field(default_factory=dict)

    def declare(self, info: PredInfo, allow_override: bool = False) -> PredInfo:
        existing = self._table.get(info.skeleton)
        if existing is not None and not allow_override and existing != info:
            raise ScopeError(
                f"conflicting declarations for {info.display or info.skeleton}: "
                f"{existing.klass.name} vs {info.klass.name}"
            )
        self._table[info.skeleton] = info
        return info

    def lookup(self, skeleton: Skeleton) -> Optional[PredInfo]:
        scope: Optional[Scope] = self
        while scope is not None:
            info = scope._table.get(skeleton)
            if info is not None:
                return info
            scope = scope.parent
        return None

    def resolve(self, pred: Term, arity: int) -> Optional[PredInfo]:
        """Resolve a (possibly compound) predicate name to its PredInfo.

        Returns ``None`` for predicate variables (the caller narrows by
        arity with :meth:`candidates`) and, in lenient mode, for undeclared
        names (which become implicit EDB relations).  Raises in strict mode
        for undeclared names.
        """
        skeleton = pred_skeleton(pred, arity)
        if skeleton[0] is None:
            return None
        info = self.lookup(skeleton)
        if info is not None:
            return info
        if self.strict:
            raise ScopeError(f"undeclared predicate {pred}/{arity} (strict mode)")
        return None

    def candidates(self, arity: int) -> List[PredInfo]:
        """All visible predicates of the given arity -- the compile-time
        candidate set for a predicate-variable subgoal (paper Section 5.1:
        "the scoping rules ... give the compiler a list of the predicates
        which a subgoal variable could possibly match")."""
        seen: Dict[Skeleton, PredInfo] = {}
        scope: Optional[Scope] = self
        while scope is not None:
            for skeleton, info in scope._table.items():
                if info.arity == arity and skeleton not in seen:
                    seen[skeleton] = info
            scope = scope.parent
        return sorted(seen.values(), key=lambda i: str(i.skeleton))

    def child(self, module: Optional[str] = None) -> "Scope":
        return Scope(module=module or self.module, parent=self, strict=self.strict)

    def all_infos(self) -> List[PredInfo]:
        out: Dict[Skeleton, PredInfo] = {}
        scope: Optional[Scope] = self
        while scope is not None:
            for skeleton, info in scope._table.items():
                out.setdefault(skeleton, info)
            scope = scope.parent
        return list(out.values())
