"""Planner-side statistics access.

The planner never touches live relation state directly: every read goes
through a :class:`StatsContext`, which resolves each predicate at most
once per ``optimize()`` call and coerces whatever the caller's source
returns into an immutable
:class:`~repro.storage.stats.RelationSnapshot`.  A live
:class:`~repro.storage.relation.Relation` is snapshotted by its own
``stats_snapshot()`` -- one acquisition of its index lock -- so the whole
plan is costed against a single consistent state even while concurrent
readers are building adaptive indexes and charging scan ledgers.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.storage.stats import RelationSnapshot

# A caller-supplied statistics source: ``source(pred, arity)`` returns a
# Relation, a RelationSnapshot, a bare row count, any sized container, or
# None when the predicate's statistics are unknown.
StatsSource = Callable[[object, int], object]


def coerce_snapshot(raw, name, arity: int) -> Optional[RelationSnapshot]:
    """Adapt whatever a stats source returned to a RelationSnapshot."""
    if raw is None:
        return None
    if isinstance(raw, RelationSnapshot):
        return raw
    snapshot = getattr(raw, "stats_snapshot", None)
    if snapshot is not None:
        return snapshot()
    if isinstance(raw, int):
        return RelationSnapshot(name=name, arity=arity, rows=raw)
    try:
        rows = len(raw)
    except TypeError:
        return None
    return RelationSnapshot(name=name, arity=arity, rows=rows)


class StatsContext:
    """Memoized statistics reads for one ``optimize()`` call.

    Each ``(pred, arity)`` is resolved and snapshotted at most once per
    context, so every pass sees the same numbers and a relation's lock is
    taken once per plan, not once per field read.
    """

    __slots__ = ("_source", "_cache")

    def __init__(self, source: Optional[StatsSource] = None):
        self._source = source
        self._cache: Dict[Tuple[object, int], Optional[RelationSnapshot]] = {}

    def lookup(self, pred, arity: int) -> Optional[RelationSnapshot]:
        key = (pred, arity)
        try:
            return self._cache[key]
        except KeyError:
            pass
        snap = None
        if self._source is not None:
            snap = coerce_snapshot(self._source(pred, arity), pred, arity)
        self._cache[key] = snap
        return snap
