"""Literal classification: the leaf analysis of the planner.

Given one body literal and the set of variables already bound, classify
each argument position into probe-key columns (constants and bound
variables), flat extraction targets (new variables), repeated-variable
equality checks, and residual complex patterns.  The result is everything
a hash join needs at run time.

Moved here from ``repro.nail.rules`` so both engines -- the NAIL!
evaluator's :class:`~repro.nail.rules.JoinPlanner` and the Glue VM
compiler's scan-step builder -- reach it through the shared ``repro.opt``
planner.  The old names remain importable from ``repro.nail.rules`` as
deprecated shims for one release.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.analysis.bindings import term_vars
from repro.lang.ast import PredSubgoal
from repro.terms.term import Term, Var, is_ground, variables


@dataclass(frozen=True)
class LiteralPlan:
    """The compiled join shape of one body literal for one bound-var set.

    ``key_cols`` are the probe-key positions, sorted by column: each entry
    is ``(col, kind, value)`` with kind ``"const"`` (value is the ground
    term to equal) or ``"var"`` (value is the bound variable supplying the
    key).  ``probe_cols`` is the matching sorted column tuple, directly
    usable as a :class:`~repro.storage.index.HashIndex` column set.

    ``extract`` positions bind new variables straight off the row (a flat
    extraction template -- no bindings-dict matching); ``eq_checks`` pins a
    repeated new variable to its first occurrence; ``complex_cols`` holds
    argument patterns (compounds containing variables) that still need
    general matching per candidate row.
    """

    pred: Term
    pred_vars: Tuple[str, ...]  # vars in the predicate name, first-appearance
    arity: int
    key_cols: Tuple[Tuple[int, str, object], ...]
    extract: Tuple[Tuple[int, str], ...]
    eq_checks: Tuple[Tuple[int, int], ...]
    complex_cols: Tuple[Tuple[int, Term], ...]
    complex_has_bound: bool  # some complex pattern mentions a bound var
    patterns: Tuple[Term, ...]  # the literal's original argument terms

    @property
    def probe_cols(self) -> Tuple[int, ...]:
        return tuple(col for col, _, _ in self.key_cols)

    @property
    def has_var_keys(self) -> bool:
        return any(kind == "var" for _, kind, _ in self.key_cols)

    @property
    def covers_all_columns(self) -> bool:
        """True when the probe key determines the entire row (a membership
        test -- the fully-ground negation fast path)."""
        return (
            len(self.key_cols) == self.arity
            and not self.complex_cols
        )


def classify_join_columns(
    pred: Term, args: Sequence[Term], bound: FrozenSet[str]
) -> LiteralPlan:
    """Classify each argument position of a literal given that the
    variables in ``bound`` are ground at evaluation time.

    Shared between the NAIL! evaluator (whose :class:`JoinPlanner` memoizes
    the result per bound-set) and the Glue VM compiler (which maps the
    bound-variable names onto supplementary-row columns and bakes the
    result into each scan step).
    """
    pred_vars: List[str] = []
    for v in variables(pred):
        if not v.is_anonymous and v.name not in pred_vars:
            pred_vars.append(v.name)
    key_cols: List[Tuple[int, str, object]] = []
    extract: List[Tuple[int, str]] = []
    eq_checks: List[Tuple[int, int]] = []
    complex_cols: List[Tuple[int, Term]] = []
    first_new: Dict[str, int] = {}
    for col, arg in enumerate(args):
        if isinstance(arg, Var):
            if arg.is_anonymous:
                continue  # matches anything, binds nothing
            if arg.name in bound:
                key_cols.append((col, "var", arg.name))
            elif arg.name in first_new:
                eq_checks.append((col, first_new[arg.name]))
            else:
                first_new[arg.name] = col
                extract.append((col, arg.name))
        elif is_ground(arg):
            key_cols.append((col, "const", arg))
        else:
            complex_cols.append((col, arg))
    complex_has_bound = any(term_vars(pat) & bound for _, pat in complex_cols)
    return LiteralPlan(
        pred=pred,
        pred_vars=tuple(pred_vars),
        arity=len(args),
        key_cols=tuple(key_cols),
        extract=tuple(extract),
        eq_checks=tuple(eq_checks),
        complex_cols=tuple(complex_cols),
        complex_has_bound=complex_has_bound,
        patterns=tuple(args),
    )


def compile_literal_plan(subgoal: PredSubgoal, bound: FrozenSet[str]) -> LiteralPlan:
    """Classify each argument position of ``subgoal`` given that the
    variables in ``bound`` are ground at evaluation time."""
    return classify_join_columns(subgoal.pred, subgoal.args, bound)
