"""The logical plan the pass pipeline produces.

A :class:`Plan` is a scheduled rule/statement body: one :class:`PlanStep`
per subgoal in execution order, each carrying the estimated binding count
after the step (``est_rows``), the snapshot cardinality of the scanned
relation, the probe-key columns, and -- when projection push-down applies
-- the variables still live afterwards.  Both runtimes execute the
schedule and emit the estimates next to actual row counts in the unified
``"join"`` trace events, which is what EXPLAIN ANALYZE renders side by
side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Selectivity assumed for a filter comparison when nothing better is
#: known: ``=`` keeps ~1 in 10 bindings, any other operator ~1 in 2.
EQ_SELECTIVITY = 0.1
DEFAULT_SELECTIVITY = 0.5


def filter_selectivity(op: str) -> float:
    return EQ_SELECTIVITY if op == "=" else DEFAULT_SELECTIVITY


def fmt_est(value: Optional[float]) -> str:
    """Render an estimate for EXPLAIN output (``?`` when unknown)."""
    if value is None:
        return "?"
    if value >= 1_000_000:
        return f"{value:.2e}"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}".rstrip("0").rstrip(".")


def subgoal_label(subgoal) -> str:
    """A compact, deterministic label for one body subgoal."""
    pred = getattr(subgoal, "pred", None)
    args = getattr(subgoal, "args", None)
    if pred is not None and args is not None:
        neg = "!" if getattr(subgoal, "negated", False) else ""
        return f"{neg}{pred}/{len(args)}"
    op = getattr(subgoal, "op", None)
    if op is not None:
        return f"compare '{op}'"
    return type(subgoal).__name__


@dataclass(frozen=True)
class PlanStep:
    """One scheduled subgoal.

    ``index`` is the subgoal's position in the *source* body; ``kind`` is
    ``"scan"``, ``"neg"``, ``"filter"``, ``"bind"``, ``"fixed"`` or
    ``"other"``.  ``est_in``/``est_rows`` are the estimated binding counts
    entering/leaving the step (``None`` when no estimate survives -- the
    fallback matrix in docs/PERFORMANCE.md).  ``project`` lists the live
    variables to keep after the step when projection push-down fired.
    """

    index: int
    subgoal: object
    kind: str
    est_in: Optional[float] = None
    est_rows: Optional[float] = None
    source_rows: Optional[int] = None
    probe_cols: Tuple[int, ...] = ()
    project: Optional[Tuple[str, ...]] = None


@dataclass(frozen=True)
class Plan:
    """A scheduled body: steps in execution order plus the passes that ran."""

    body: Tuple
    steps: Tuple[PlanStep, ...]
    passes: Tuple[str, ...]

    @property
    def order(self) -> Tuple[int, ...]:
        """Source-body indexes in execution order."""
        return tuple(step.index for step in self.steps)

    @property
    def ordered_body(self) -> Tuple:
        return tuple(step.subgoal for step in self.steps)

    def step_at(self, index: int) -> Optional[PlanStep]:
        """The step scheduled for source-body position ``index``."""
        for step in self.steps:
            if step.index == index:
                return step
        return None

    def describe(self) -> List[str]:
        """EXPLAIN lines, one per step in execution order."""
        lines: List[str] = []
        for pos, step in enumerate(self.steps):
            parts = [f"{pos}: {step.kind:6s} {subgoal_label(step.subgoal)}"]
            if step.probe_cols:
                parts.append(f"key@{list(step.probe_cols)}")
            if step.source_rows is not None:
                parts.append(f"rows={step.source_rows}")
            parts.append(f"est~{fmt_est(step.est_rows)}")
            if step.project is not None:
                parts.append(f"project({','.join(step.project)})")
            lines.append(" ".join(parts))
        return lines
