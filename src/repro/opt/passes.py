"""The pass pipeline: an ordered list of rewrite rules over a scheduled body.

``optimize()`` is the one public planner entry point for both engines
(paper Sections 3.1 and 9; the shape follows Raco's ordered rule list over
a logical plan).  A plan starts as the body in source order; each pass
rewrites the schedule or annotates it:

* ``pull-selections`` -- constant-selection pull-forward: comparisons and
  emptiness tests move to the earliest position where they are admissible,
  shrinking every later intermediate.
* ``join-order`` -- greedy cheapest-admissible-next join ordering within
  the segments delimited by fixed subgoals, by estimated matches per
  binding (``rows / prod(distinct(key col))``) with bound-variable
  propagation; unbound-argument ratio is the fallback when statistics are
  unknown.
* ``push-projections`` -- annotates scans with the variables still live
  afterwards so the evaluator can drop dead columns (and merge the
  duplicates) mid-body.

Admissibility reuses the engine-neutral machinery in
``repro.analysis.bindings`` (safety) and ``repro.analysis.fixedness``
(fixed subgoals keep their positions; nothing moves past an aggregator),
plus the caller's procedure-call oracles for Glue bodies.  A stuck
schedule degrades to source order, exactly like the heuristic reorderer
it replaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.analysis.bindings import (
    BindingError,
    check_subgoal_safety,
    expr_vars,
    subgoal_binds,
    term_vars,
    terms_vars,
)
from repro.analysis.fixedness import CallFixedness, is_fixed_subgoal
from repro.lang.ast import (
    CompareSubgoal,
    EmptyCond,
    GroupBySubgoal,
    PredSubgoal,
    UnionSubgoal,
)
from repro.opt.literal import classify_join_columns
from repro.opt.plan import Plan, PlanStep, filter_selectivity
from repro.opt.stats import StatsContext
from repro.terms.term import Var

# Returns the bound arity of a callable subgoal, or None for relations.
CallBoundArity = Callable[[PredSubgoal], Optional[int]]


def _no_call_info(_subgoal: PredSubgoal):
    return None


@dataclass
class PassContext:
    """Shared state for one ``optimize()`` call."""

    stats: StatsContext
    bound: Set[str] = field(default_factory=set)
    input_size: Optional[float] = 1.0
    call_fixedness: CallFixedness = _no_call_info
    call_bound_arity: CallBoundArity = _no_call_info
    pinned_first: Optional[int] = None  # seminaive delta literal, if any
    required_vars: Optional[Set[str]] = None  # head vars (projection target)
    allow_projection: bool = False


@dataclass
class PlanState:
    """The mutable plan the passes rewrite: a schedule over the body."""

    body: Tuple
    order: List[int]
    project: Dict[int, Tuple[str, ...]] = field(default_factory=dict)


def _admissible(subgoal, bound: Set[str], ctx: PassContext) -> bool:
    try:
        check_subgoal_safety(subgoal, bound)
    except BindingError:
        return False
    if isinstance(subgoal, PredSubgoal) and not subgoal.negated:
        bound_arity = ctx.call_bound_arity(subgoal)
        if bound_arity is not None:
            if terms_vars(subgoal.args[:bound_arity]) - bound:
                return False
    return True


def _subgoal_vars(subgoal) -> Set[str]:
    """Every named variable a subgoal mentions (not just the new binds)."""
    if isinstance(subgoal, PredSubgoal):
        return term_vars(subgoal.pred) | terms_vars(subgoal.args)
    if isinstance(subgoal, CompareSubgoal):
        return expr_vars(subgoal.left) | expr_vars(subgoal.right)
    if isinstance(subgoal, GroupBySubgoal):
        return terms_vars(subgoal.terms)
    if isinstance(subgoal, UnionSubgoal):
        return {
            name
            for alt in subgoal.alternatives
            for inner in alt
            for name in _subgoal_vars(inner)
        }
    pred = getattr(subgoal, "pred", None)
    out: Set[str] = set()
    if pred is not None:
        out |= term_vars(pred)
    args = getattr(subgoal, "args", None)
    if args is not None:
        out |= terms_vars(args)
    return out


def _scan_estimate(subgoal: PredSubgoal, bound: Set[str], ctx: PassContext):
    """Estimated matches per input binding, or None when unknown."""
    if term_vars(subgoal.pred):
        return None  # HiLog literal: the relation name is run-time data
    snap = ctx.stats.lookup(subgoal.pred, len(subgoal.args))
    if snap is None:
        return None
    lit = classify_join_columns(subgoal.pred, subgoal.args, frozenset(bound))
    return snap.est_matches(lit.probe_cols)


def _score(subgoal, bound: Set[str], ctx: PassContext) -> tuple:
    """Lower runs earlier.  Filters and binds are free (category 0);
    admissible negations only shrink (1); scans order by estimated matches
    per binding when statistics are known, by unbound-argument ratio
    otherwise (2); anything else keeps source order (3)."""
    if isinstance(subgoal, (CompareSubgoal, EmptyCond)):
        return (0, 0, 0.0)
    if isinstance(subgoal, PredSubgoal):
        if subgoal.negated:
            return (1, 0, 0.0)
        if not subgoal.args:
            return (2, 0, 0.0)
        est = _scan_estimate(subgoal, bound, ctx)
        if est is not None:
            return (2, 0, est)
        bound_args = sum(
            1 for arg in subgoal.args if not (term_vars(arg) - bound)
        )
        return (2, 1, 1.0 - bound_args / len(subgoal.args))
    return (3, 0, 0.0)


# ---------------------------------------------------------------------- #
# the passes
# ---------------------------------------------------------------------- #


def pull_selections(state: PlanState, ctx: PassContext) -> None:
    """Hoist comparison/emptiness tests to their earliest admissible slot.

    Every other subgoal keeps its relative order, and nothing crosses a
    fixed subgoal (pending tests flush, in source order, before the
    barrier they preceded).
    """
    body = state.body
    new_order: List[int] = []
    bound: Set[str] = set(ctx.bound)
    pending: List[int] = []  # tests not yet admissible, source order

    def place_ready() -> None:
        nonlocal bound
        placed = True
        while placed:
            placed = False
            for i in list(pending):
                if _admissible(body[i], bound, ctx):
                    pending.remove(i)
                    new_order.append(i)
                    bound |= subgoal_binds(body[i], bound)
                    placed = True

    def flush_pending() -> None:
        nonlocal bound
        for i in pending:
            new_order.append(i)
            bound |= subgoal_binds(body[i], bound)
        pending.clear()

    for i in state.order:
        subgoal = body[i]
        if is_fixed_subgoal(subgoal, ctx.call_fixedness):
            flush_pending()
            new_order.append(i)
            bound |= subgoal_binds(subgoal, bound)
            continue
        if isinstance(subgoal, (CompareSubgoal, EmptyCond)):
            pending.append(i)
            place_ready()
            continue
        new_order.append(i)
        bound |= subgoal_binds(subgoal, bound)
        place_ready()
    flush_pending()
    state.order = new_order


def join_order(state: PlanState, ctx: PassContext) -> None:
    """Greedy cheapest-admissible-next schedule within each segment.

    Fixed subgoals delimit segments and keep their positions.  A pinned
    subgoal (the seminaive delta literal, usually the smallest source)
    leads its segment.  If no remaining subgoal is admissible the rest is
    emitted in source order -- the later safety check reports the real
    error with source positions.
    """
    body = state.body
    result: List[int] = []
    bound: Set[str] = set(ctx.bound)
    segment: List[int] = []

    def flush_segment() -> None:
        nonlocal bound
        pending = list(segment)
        segment.clear()
        pinned = ctx.pinned_first
        if (
            pinned is not None
            and pinned in pending
            and _admissible(body[pinned], bound, ctx)
        ):
            pending.remove(pinned)
            result.append(pinned)
            bound |= subgoal_binds(body[pinned], bound)
        while pending:
            best = None
            for i in pending:
                if not _admissible(body[i], bound, ctx):
                    continue
                key = (_score(body[i], bound, ctx), i)
                if best is None or key < best[0]:
                    best = (key, i)
            if best is None:
                for i in pending:
                    result.append(i)
                    bound |= subgoal_binds(body[i], bound)
                return
            _, i = best
            pending.remove(i)
            result.append(i)
            bound |= subgoal_binds(body[i], bound)

    for i in state.order:
        if is_fixed_subgoal(body[i], ctx.call_fixedness):
            flush_segment()
            result.append(i)
            bound |= subgoal_binds(body[i], bound)
        else:
            segment.append(i)
    flush_segment()
    state.order = result


def push_projections(state: PlanState, ctx: PassContext) -> None:
    """Annotate scans with the variables still *live* after them.

    Only fires when the caller opts in and supplies ``required_vars`` (the
    rule's head variables): projecting early merges bindings that differ
    only on dead variables, which is sound under set semantics but would
    change aggregate multiplicities -- so the NAIL! evaluator enables it
    for aggregate-free rules only -- and the Glue VM's positional
    supplementary layout cannot drop columns mid-statement.
    """
    if not ctx.allow_projection or ctx.required_vars is None:
        return
    body = state.body
    order = state.order
    needed_after: List[Set[str]] = [set() for _ in order]
    needed: Set[str] = set(ctx.required_vars)
    for pos in range(len(order) - 1, -1, -1):
        needed_after[pos] = set(needed)
        needed |= _subgoal_vars(body[order[pos]])
    bound: Set[str] = set(ctx.bound)
    for pos, i in enumerate(order):
        subgoal = body[i]
        bound |= subgoal_binds(subgoal, bound)
        if not isinstance(subgoal, PredSubgoal) or subgoal.negated:
            continue
        live = bound & needed_after[pos]
        if live < bound:
            state.project[i] = tuple(sorted(live))


DEFAULT_COST_PIPELINE: Tuple[str, ...] = (
    "pull-selections",
    "join-order",
    "push-projections",
)

PASSES: Dict[str, Callable[[PlanState, PassContext], None]] = {
    "pull-selections": pull_selections,
    "join-order": join_order,
    "push-projections": push_projections,
}


# ---------------------------------------------------------------------- #
# estimate annotation and the public facade
# ---------------------------------------------------------------------- #


def _compare_binds(subgoal: CompareSubgoal, bound: Set[str]) -> bool:
    if subgoal.op != "=":
        return False
    for side in (subgoal.left, subgoal.right):
        if isinstance(side, Var) and not side.is_anonymous and side.name not in bound:
            return True
    return False


def _annotate(state: PlanState, ctx: PassContext) -> Tuple[PlanStep, ...]:
    """Walk the schedule once, propagating bound vars and row estimates."""
    body = state.body
    bound: Set[str] = set(ctx.bound)
    est: Optional[float] = (
        float(ctx.input_size) if ctx.input_size is not None else None
    )
    steps: List[PlanStep] = []
    for i in state.order:
        subgoal = body[i]
        est_in = est
        kind = "other"
        source_rows: Optional[int] = None
        probe_cols: Tuple[int, ...] = ()
        if is_fixed_subgoal(subgoal, ctx.call_fixedness):
            kind = "fixed"
            est = None  # aggregation or side effects: size unknowable here
        elif isinstance(subgoal, PredSubgoal):
            lit = classify_join_columns(
                subgoal.pred, subgoal.args, frozenset(bound)
            )
            probe_cols = lit.probe_cols
            if subgoal.negated:
                kind = "neg"  # anti-join: est stays an upper bound
            else:
                kind = "scan"
                snap = None
                if not term_vars(subgoal.pred):
                    snap = ctx.stats.lookup(subgoal.pred, len(subgoal.args))
                if snap is not None:
                    source_rows = snap.rows
                    if est is not None:
                        est = est * snap.est_matches(probe_cols)
                else:
                    est = None
        elif isinstance(subgoal, CompareSubgoal):
            if _compare_binds(subgoal, bound):
                kind = "bind"
            else:
                kind = "filter"
                if est is not None:
                    est = est * filter_selectivity(subgoal.op)
        elif isinstance(subgoal, EmptyCond):
            kind = "filter"  # whole-set test: keeps all bindings or none
        else:
            est = None
        bound |= subgoal_binds(subgoal, bound)
        steps.append(
            PlanStep(
                index=i,
                subgoal=subgoal,
                kind=kind,
                est_in=est_in,
                est_rows=est,
                source_rows=source_rows,
                probe_cols=probe_cols,
                project=state.project.get(i),
            )
        )
    return tuple(steps)


def optimize(
    body,
    stats=None,
    bound=frozenset(),
    *,
    input_size: Optional[float] = 1.0,
    order_mode: str = "cost",
    pipeline: Optional[Tuple[str, ...]] = None,
    call_fixedness: Optional[CallFixedness] = None,
    call_bound_arity: Optional[CallBoundArity] = None,
    pinned_first: Optional[int] = None,
    required_vars: Optional[Set[str]] = None,
    allow_projection: bool = False,
) -> Plan:
    """Plan a rule/statement body: the public planner facade.

    ``body`` is a sequence of subgoals; ``stats`` is a
    :class:`~repro.opt.stats.StatsContext` or a ``(pred, arity) ->
    Relation | RelationSnapshot | int | sized | None`` source; ``bound``
    names the variables ground before the body runs (seed/demand
    bindings).  With ``order_mode="cost"`` the default pipeline runs
    (``pull-selections``, ``join-order``, ``push-projections``); with
    ``"program"`` the body keeps its written order and only the estimate
    annotation runs -- the differential baseline.  ``pipeline`` overrides
    the pass list by name (see :data:`PASSES`).
    """
    if order_mode not in ("cost", "program"):
        raise ValueError(f"unknown order mode {order_mode!r}")
    ctx = PassContext(
        stats=stats if isinstance(stats, StatsContext) else StatsContext(stats),
        bound=set(bound),
        input_size=input_size,
        call_fixedness=call_fixedness or _no_call_info,
        call_bound_arity=call_bound_arity or _no_call_info,
        pinned_first=pinned_first,
        required_vars=required_vars,
        allow_projection=allow_projection,
    )
    state = PlanState(body=tuple(body), order=list(range(len(body))))
    names = (
        pipeline
        if pipeline is not None
        else (DEFAULT_COST_PIPELINE if order_mode == "cost" else ())
    )
    for name in names:
        PASSES[name](state, ctx)
    return Plan(body=state.body, steps=_annotate(state, ctx), passes=tuple(names))
