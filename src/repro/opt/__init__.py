"""repro.opt: the shared cost-based planner for both join engines.

One public facade -- :func:`optimize` -- plans NAIL! rule bodies and Glue
VM statement bodies alike: an ordered pass pipeline (constant-selection
pull-forward, greedy cost-based join ordering with bound-variable
propagation, projection push-down) over a small logical plan, costed
against consistent per-relation statistics snapshots.  Program order stays
available as the differential baseline via ``order_mode="program"``.

Migration note (PR 6): ``classify_join_columns``, ``compile_literal_plan``
and :class:`LiteralPlan` moved here from ``repro.nail.rules``, where they
remain importable as deprecated shims for one release.
"""

from repro.opt.literal import (
    LiteralPlan,
    classify_join_columns,
    compile_literal_plan,
)
from repro.opt.passes import (
    DEFAULT_COST_PIPELINE,
    PASSES,
    PassContext,
    PlanState,
    optimize,
)
from repro.opt.plan import Plan, PlanStep, filter_selectivity, fmt_est
from repro.opt.stats import RelationSnapshot, StatsContext, coerce_snapshot

__all__ = [
    "DEFAULT_COST_PIPELINE",
    "LiteralPlan",
    "PASSES",
    "PassContext",
    "Plan",
    "PlanState",
    "PlanStep",
    "RelationSnapshot",
    "StatsContext",
    "classify_join_columns",
    "coerce_snapshot",
    "compile_literal_plan",
    "filter_selectivity",
    "fmt_est",
    "optimize",
]
